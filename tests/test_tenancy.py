"""Tests for the multi-tenant shared server."""

import numpy as np
import pytest

from repro.core.capacity import CapacityPlanner
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.tenancy import SharedServer, Tenant


def make_tenant(seed, name, n=400, horizon=20.0, fraction=0.9, delta=0.1):
    gen = np.random.default_rng(seed)
    floor = gen.uniform(0.0, horizon, n)
    burst = (horizon / 2) + gen.uniform(0.0, 0.3, n // 2)
    w = Workload(np.sort(np.concatenate([floor, burst])), name=name)
    return Tenant(workload=w, fraction=fraction, delta=delta)


@pytest.fixture(scope="module")
def tenants():
    return [make_tenant(1, "alpha"), make_tenant(2, "beta"), make_tenant(3, "gamma")]


@pytest.fixture(scope="module")
def result(tenants):
    return SharedServer(tenants).run()


class TestValidation:
    def test_needs_tenants(self):
        with pytest.raises(ConfigurationError):
            SharedServer([])

    def test_unique_names(self):
        t = make_tenant(1, "dup")
        with pytest.raises(ConfigurationError, match="unique"):
            SharedServer([t, make_tenant(2, "dup")])

    def test_tenant_validation(self):
        w = Workload([1.0], name="x")
        with pytest.raises(ConfigurationError):
            Tenant(workload=w, fraction=0.0, delta=0.1)
        with pytest.raises(ConfigurationError):
            Tenant(workload=w, fraction=0.9, delta=0.0)

    def test_headroom_validation(self, tenants):
        with pytest.raises(ConfigurationError):
            SharedServer(tenants, headroom=0.5)


class TestProvisioning:
    def test_plans_match_planner(self, tenants):
        server = SharedServer(tenants)
        for t in tenants:
            expected = CapacityPlanner(t.workload, t.delta).min_capacity(t.fraction)
            assert server.plans[t.name] == expected

    def test_total_is_additive_plus_surplus(self, tenants):
        server = SharedServer(tenants)
        assert server.total_capacity == pytest.approx(
            sum(server.plans.values()) + server.delta_c
        )

    def test_flow_slas_derive_from_plans(self, tenants):
        server = SharedServer(tenants)
        slas = server.flow_slas()
        for client_id, t in enumerate(tenants):
            assert slas[client_id].rho == server.plans[t.name]
            assert slas[client_id].delta == t.delta

    def test_feasibility_reported(self, result):
        assert result.feasible


class TestServiceGuarantees:
    def test_all_requests_served(self, tenants, result):
        for t in tenants:
            report = result.report(t.name)
            assert report.n_requests == len(t.workload)

    def test_targets_near_met_at_additive_capacity(self, tenants, result):
        """At exactly the additive estimate (headroom 1.0) with all three
        tenants bursting *simultaneously* — the worst case the estimate
        assumes — guarantees hold to within the online-recombination
        whisker the paper accepts for Miser."""
        for t in tenants:
            report = result.report(t.name)
            assert report.guaranteed_fraction_served >= t.fraction - 0.08, t.name
            assert report.primary_misses <= 0.10 * max(1, len(report.primary))

    def test_headroom_restores_exact_guarantees(self, tenants):
        """Modest headroom (15%) absorbs the simultaneous-full-queue
        corner and eliminates primary misses."""
        result = SharedServer(tenants, headroom=1.15).run()
        for t in tenants:
            report = result.report(t.name)
            assert report.primary_misses == 0, t.name
            assert report.guaranteed_fraction_served >= t.fraction - 0.03


class TestIsolation:
    def test_flooding_tenant_cannot_hurt_conforming_ones(self, tenants):
        """Triple gamma's traffic: alpha and beta keep their guarantees;
        the damage lands on gamma's own overflow class."""
        baseline = SharedServer(tenants).run()
        flooded = SharedServer(tenants).run(overload={"gamma": 3.0})
        for name in ("alpha", "beta"):
            before = baseline.report(name).guaranteed_fraction_served
            after = flooded.report(name).guaranteed_fraction_served
            assert after >= before - 0.03, name
        # The flooder pays: its own overflow share grows.
        gamma_before = baseline.report("gamma")
        gamma_after = flooded.report("gamma")
        before_share = len(gamma_before.overflow) / gamma_before.n_requests
        after_share = len(gamma_after.overflow) / gamma_after.n_requests
        assert after_share > before_share
