"""Tests for repro.core.workload."""

import numpy as np
import pytest

from repro.core.workload import Workload
from repro.exceptions import WorkloadError


class TestConstruction:
    def test_from_list(self):
        w = Workload([0.0, 1.0, 2.5])
        assert len(w) == 3
        assert w.arrivals.tolist() == [0.0, 1.0, 2.5]

    def test_from_array(self):
        w = Workload(np.array([0.5, 1.5]))
        assert len(w) == 2

    def test_empty(self):
        w = Workload([])
        assert len(w) == 0
        assert w.duration == 0.0
        assert w.mean_rate == 0.0

    def test_name_and_metadata(self):
        w = Workload([1.0], name="x", metadata={"k": 1})
        assert w.name == "x"
        assert w.metadata == {"k": 1}

    def test_metadata_copied(self):
        meta = {"k": 1}
        w = Workload([1.0], metadata=meta)
        meta["k"] = 2
        assert w.metadata["k"] == 1

    def test_rejects_unsorted(self):
        with pytest.raises(WorkloadError, match="sorted"):
            Workload([2.0, 1.0])

    def test_rejects_negative(self):
        with pytest.raises(WorkloadError, match="non-negative"):
            Workload([-1.0, 2.0])

    def test_rejects_2d(self):
        with pytest.raises(WorkloadError, match="1-D"):
            Workload(np.zeros((2, 2)))

    def test_ties_allowed(self):
        w = Workload([1.0, 1.0, 1.0])
        assert len(w) == 3

    def test_arrivals_read_only(self):
        w = Workload([1.0, 2.0])
        with pytest.raises(ValueError):
            w.arrivals[0] = 5.0

    def test_iteration(self):
        w = Workload([1.0, 2.0])
        assert list(w) == [1.0, 2.0]


class TestFromCounts:
    def test_basic(self, toy_workload):
        assert len(toy_workload) == 5
        assert toy_workload.arrivals.tolist() == [1.0, 1.0, 2.0, 2.0, 3.0]

    def test_zero_counts_skipped(self):
        w = Workload.from_counts([1.0, 2.0, 3.0], [1, 0, 2])
        assert w.arrivals.tolist() == [1.0, 3.0, 3.0]

    def test_shape_mismatch(self):
        with pytest.raises(WorkloadError, match="shape"):
            Workload.from_counts([1.0, 2.0], [1])

    def test_negative_count(self):
        with pytest.raises(WorkloadError, match="non-negative"):
            Workload.from_counts([1.0], [-1])

    def test_roundtrip_with_arrival_counts(self, toy_workload):
        instants, counts = toy_workload.arrival_counts()
        again = Workload.from_counts(instants, counts)
        assert np.array_equal(again.arrivals, toy_workload.arrivals)


class TestFromRequests:
    def test_roundtrip(self, uniform_workload):
        requests = uniform_workload.to_requests()
        again = Workload.from_requests(requests)
        assert np.array_equal(again.arrivals, uniform_workload.arrivals)

    def test_request_indices_sequential(self, toy_workload):
        requests = toy_workload.to_requests(client_id=7)
        assert [r.index for r in requests] == [0, 1, 2, 3, 4]
        assert all(r.client_id == 7 for r in requests)


class TestStatistics:
    def test_duration(self, toy_workload):
        assert toy_workload.duration == 3.0

    def test_mean_rate(self, toy_workload):
        assert toy_workload.mean_rate == pytest.approx(5.0 / 3.0)

    def test_peak_rate_finds_burst(self, bursty_workload):
        # 300 requests in ~0.4 s dwarf the 20 IOPS floor.
        assert bursty_workload.peak_rate(0.1) > 300.0

    def test_peak_to_mean_unity_for_constant(self):
        w = Workload(np.arange(1000) * 0.01)  # exactly 100 IOPS
        # Float binning can push a boundary arrival one bin over (11/10).
        assert w.peak_to_mean(0.1) == pytest.approx(1.0, rel=0.12)

    def test_peak_rate_empty(self, empty_workload):
        assert empty_workload.peak_rate() == 0.0

    def test_rate_series_sums_to_total(self, uniform_workload):
        starts, rates = uniform_workload.rate_series(0.5)
        assert rates.sum() * 0.5 == pytest.approx(len(uniform_workload))
        assert starts[0] == 0.0

    def test_rate_series_bad_bin(self, uniform_workload):
        with pytest.raises(WorkloadError, match="bin_width"):
            uniform_workload.rate_series(0.0)

    def test_describe_keys(self, uniform_workload):
        d = uniform_workload.describe()
        assert d["requests"] == 100
        assert d["name"] == "uniform"
        assert d["mean_rate_iops"] > 0


class TestTransforms:
    def test_shift_plain(self, toy_workload):
        shifted = toy_workload.shift(2.0)
        assert shifted.arrivals.tolist() == [3.0, 3.0, 4.0, 4.0, 5.0]

    def test_shift_zero_identity(self, toy_workload):
        assert np.array_equal(toy_workload.shift(0.0).arrivals, toy_workload.arrivals)

    def test_shift_negative_rejected(self, toy_workload):
        with pytest.raises(WorkloadError, match="non-negative"):
            toy_workload.shift(-1.0)

    def test_shift_wrap_preserves_count_and_span(self, uniform_workload):
        wrapped = uniform_workload.shift(3.0, wrap=True)
        assert len(wrapped) == len(uniform_workload)
        assert wrapped.duration <= uniform_workload.duration + 1e-9

    def test_shift_wrap_is_rotation(self):
        w = Workload([1.0, 2.0, 3.0, 4.0])  # duration (wrap period) 4
        wrapped = w.shift(1.0, wrap=True)
        # 3 + 1 wraps to 0 and 4 + 1 to 1; the rest move up by 1.
        assert wrapped.arrivals.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_merge_sorted(self, toy_workload, uniform_workload):
        merged = toy_workload.merge(uniform_workload)
        assert len(merged) == len(toy_workload) + len(uniform_workload)
        assert np.all(np.diff(merged.arrivals) >= 0)

    def test_merge_name(self, toy_workload):
        merged = toy_workload.merge(toy_workload, name="pair")
        assert merged.name == "pair"

    def test_window(self):
        w = Workload([0.5, 1.5, 2.5, 3.5])
        cut = w.window(1.0, 3.0)
        assert cut.arrivals.tolist() == [0.5, 1.5]  # re-based

    def test_window_invalid(self, toy_workload):
        with pytest.raises(WorkloadError, match="window"):
            toy_workload.window(3.0, 1.0)

    def test_scale_rate_doubles_mean(self, uniform_workload):
        fast = uniform_workload.scale_rate(2.0)
        assert fast.mean_rate == pytest.approx(2 * uniform_workload.mean_rate)

    def test_scale_rate_invalid(self, uniform_workload):
        with pytest.raises(WorkloadError, match="positive"):
            uniform_workload.scale_rate(0.0)

    def test_head(self, toy_workload):
        assert len(toy_workload.head(2)) == 2

    def test_transforms_do_not_mutate(self, toy_workload):
        before = toy_workload.arrivals.copy()
        toy_workload.shift(1.0)
        toy_workload.merge(toy_workload)
        toy_workload.window(0.0, 2.0)
        toy_workload.scale_rate(2.0)
        assert np.array_equal(toy_workload.arrivals, before)


class TestInterarrivals:
    def test_gaps(self):
        w = Workload([1.0, 1.5, 3.0])
        assert w.interarrivals().tolist() == [0.5, 1.5]

    def test_short_workloads(self, empty_workload, single_request):
        assert empty_workload.interarrivals().size == 0
        assert single_request.interarrivals().size == 0
        assert single_request.interarrival_cv() == 0.0

    def test_cv_paced_is_zero(self):
        w = Workload(np.arange(100) * 0.01)
        assert w.interarrival_cv() == pytest.approx(0.0, abs=1e-9)

    def test_cv_poisson_near_one(self, rng):
        w = Workload(np.sort(rng.uniform(0, 100.0, 5000)))
        assert w.interarrival_cv() == pytest.approx(1.0, abs=0.1)

    def test_cv_bursty_above_one(self, bursty_workload):
        assert bursty_workload.interarrival_cv() > 1.2
