"""Tests for multi-tier (cascade) decomposition."""

import numpy as np
import pytest

from repro.core.multiclass import (
    TierAssignment,
    decompose_tiers,
    plan_and_decompose,
    plan_tiers,
)
from repro.core.rtt import decompose, primary_response_times
from repro.core.sla import GraduatedSLA
from repro.exceptions import ConfigurationError


class TestDecomposeTiers:
    def test_single_tier_equals_rtt(self, bursty_workload):
        assignment = decompose_tiers(bursty_workload, [(40.0, 0.1)])
        rtt = decompose(bursty_workload, 40.0, 0.1)
        assert np.array_equal(assignment.tier_mask(0), rtt.admitted)
        assert assignment.counts() == [rtt.n_admitted, rtt.n_overflow]

    def test_labels_partition_workload(self, bursty_workload):
        assignment = decompose_tiers(
            bursty_workload, [(40.0, 0.05), (20.0, 0.2)]
        )
        assert sum(assignment.counts()) == len(bursty_workload)
        assert set(np.unique(assignment.labels)) <= {0, 1, 2}

    def test_cascade_sees_only_overflow(self, bursty_workload):
        """Tier 1's sub-stream is exactly RTT's overflow from tier 0."""
        tiers = [(40.0, 0.05), (20.0, 0.2)]
        assignment = decompose_tiers(bursty_workload, tiers)
        stage0 = decompose(bursty_workload, 40.0, 0.05)
        stage1 = decompose(stage0.overflow_workload(), 20.0, 0.2)
        assert assignment.counts()[1] == stage1.n_admitted

    def test_each_tier_meets_its_deadline(self, bursty_workload):
        tiers = [(40.0, 0.05), (20.0, 0.2)]
        assignment = decompose_tiers(bursty_workload, tiers)
        for tier, (capacity, delta) in enumerate(tiers):
            sub = assignment.tier_workload(tier)
            result = decompose(sub, capacity, delta)
            # The cascade admitted exactly this set, so a dedicated
            # server at the tier capacity meets the tier deadline.
            assert result.n_admitted == len(sub)
            responses = primary_response_times(result)
            if responses.size:
                assert responses.max() <= delta + 1e-9

    def test_tiers_must_be_ordered(self, bursty_workload):
        with pytest.raises(ConfigurationError, match="ordered"):
            decompose_tiers(bursty_workload, [(40.0, 0.2), (20.0, 0.05)])

    def test_empty_tier_list(self, bursty_workload):
        with pytest.raises(ConfigurationError, match="tier"):
            decompose_tiers(bursty_workload, [])

    def test_empty_workload(self, empty_workload):
        assignment = decompose_tiers(empty_workload, [(10.0, 0.1)])
        assert assignment.counts() == [0, 0]

    def test_tier_workload_names(self, bursty_workload):
        assignment = decompose_tiers(bursty_workload, [(40.0, 0.1)])
        assert assignment.tier_workload(0).name.endswith(".tier0")


class TestPlanTiers:
    def test_two_tier_sla(self, bursty_workload):
        sla = GraduatedSLA([(0.8, 0.05), (0.95, 0.2)])
        tiers, assignment = plan_and_decompose(bursty_workload, sla)
        fractions = assignment.cumulative_fractions()
        assert fractions[0] >= 0.8
        assert fractions[1] >= 0.95
        assert [delta for _, delta in tiers] == [0.05, 0.2]

    def test_full_coverage_tier(self, bursty_workload):
        sla = GraduatedSLA([(0.8, 0.05), (1.0, 0.5)])
        tiers, assignment = plan_and_decompose(bursty_workload, sla)
        assert assignment.cumulative_fractions()[-1] == pytest.approx(1.0)
        assert assignment.counts()[-1] == 0  # nothing left best-effort

    def test_capacities_minimal_at_first_tier(self, bursty_workload):
        """Tier 0's planned capacity equals the single-tier Cmin."""
        from repro.core.capacity import CapacityPlanner

        sla = GraduatedSLA([(0.8, 0.05), (0.95, 0.2)])
        tiers = plan_tiers(bursty_workload, sla)
        assert tiers[0][0] == CapacityPlanner(
            bursty_workload, 0.05
        ).min_capacity(0.8)

    def test_later_tier_cheaper_than_from_scratch(self, bursty_workload):
        """The cascade's second tier serves only the overflow, so it needs
        less capacity than guaranteeing 95% @ its deadline outright."""
        from repro.core.capacity import CapacityPlanner

        sla = GraduatedSLA([(0.8, 0.05), (0.95, 0.2)])
        tiers = plan_tiers(bursty_workload, sla)
        outright = CapacityPlanner(bursty_workload, 0.2).min_capacity(0.95)
        assert tiers[1][0] <= outright

    def test_redundant_tier_gets_token_capacity(self, bursty_workload):
        # Second tier adds no extra coverage requirement.
        sla = GraduatedSLA([(0.9, 0.05), (0.90001, 0.2)])
        tiers = plan_tiers(bursty_workload, sla)
        assert tiers[1][0] <= tiers[0][0]

    def test_assignment_type(self, bursty_workload):
        sla = GraduatedSLA([(0.9, 0.1)])
        _, assignment = plan_and_decompose(bursty_workload, sla)
        assert isinstance(assignment, TierAssignment)
        assert assignment.n_tiers == 1
