"""Tests for the generic named-strategy Registry."""

import pytest

from repro.core.registry import Registry
from repro.exceptions import ConfigurationError


class TestRegistration:
    def test_register_and_get(self):
        reg = Registry("widget")
        reg.register("a", 1)
        assert reg.get("a") == 1
        assert reg.names() == ("a",)
        assert "a" in reg and "b" not in reg

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("fn")
        def factory():
            return 42

        assert reg.get("fn") is factory

    def test_reregistering_replaces(self):
        reg = Registry("widget")
        reg.register("a", 1)
        reg.register("a", 2)
        assert reg.get("a") == 2
        assert reg.names() == ("a",)

    def test_names_are_normalized(self):
        reg = Registry("widget")
        reg.register("  MiXeD ", 7)
        assert reg.get("mixed") == 7

    def test_get_unknown_lists_choices(self):
        reg = Registry("widget")
        reg.register("a", 1)
        reg.register("b", 2)
        with pytest.raises(ConfigurationError, match=r"unknown widget 'z'.*\['a', 'b'\]"):
            reg.get("z")


class TestResolutionChain:
    def test_explicit_beats_everything(self, monkeypatch):
        reg = Registry("widget", env_var="TEST_WIDGET", default="a")
        reg.register("a", 1)
        reg.register("b", 2)
        reg.register("c", 3)
        monkeypatch.setenv("TEST_WIDGET", "b")
        reg.set_override("c")
        assert reg.resolve("a") == "a"

    def test_override_beats_env_and_default(self, monkeypatch):
        reg = Registry("widget", env_var="TEST_WIDGET", default="a")
        reg.register("a", 1)
        reg.register("b", 2)
        reg.register("c", 3)
        monkeypatch.setenv("TEST_WIDGET", "b")
        reg.set_override("c")
        assert reg.resolve() == "c"

    def test_env_beats_default(self, monkeypatch):
        reg = Registry("widget", env_var="TEST_WIDGET", default="a")
        reg.register("a", 1)
        reg.register("b", 2)
        monkeypatch.setenv("TEST_WIDGET", "b")
        assert reg.resolve() == "b"

    def test_default_when_nothing_selects(self):
        reg = Registry("widget", default="a")
        reg.register("a", 1)
        assert reg.resolve() == "a"

    def test_no_default_requires_explicit(self):
        reg = Registry("widget")
        reg.register("a", 1)
        with pytest.raises(ConfigurationError, match="no widget selected"):
            reg.resolve()

    def test_resolve_rejects_unknown(self):
        reg = Registry("widget", default="a")
        reg.register("a", 1)
        with pytest.raises(ConfigurationError, match="unknown widget"):
            reg.resolve("zzz")

    def test_resolve_normalizes_case(self):
        reg = Registry("widget")
        reg.register("a", 1)
        assert reg.resolve(" A ") == "a"


class TestVirtualNames:
    def test_virtual_passes_through_resolve(self):
        reg = Registry("widget", default="auto", virtual=("auto",))
        reg.register("a", 1)
        assert reg.resolve() == "auto"
        assert reg.resolve("auto") == "auto"

    def test_virtual_never_satisfies_get(self):
        reg = Registry("widget", virtual=("auto",))
        reg.register("a", 1)
        with pytest.raises(ConfigurationError, match="'auto'"):
            reg.get("auto")

    def test_error_message_mentions_virtual(self):
        reg = Registry("widget", virtual=("auto",))
        reg.register("a", 1)
        with pytest.raises(ConfigurationError, match=r"or 'auto'"):
            reg.resolve("zzz")


class TestOverrideLifecycle:
    def test_set_override_validates_eagerly(self):
        reg = Registry("widget")
        reg.register("a", 1)
        with pytest.raises(ConfigurationError):
            reg.set_override("nope")
        assert reg.override is None

    def test_none_clears(self):
        reg = Registry("widget", default="a")
        reg.register("a", 1)
        reg.register("b", 2)
        reg.set_override("b")
        reg.set_override(None)
        assert reg.resolve() == "a"

    def test_use_restores_on_exit_and_error(self):
        reg = Registry("widget", default="a")
        reg.register("a", 1)
        reg.register("b", 2)
        with reg.use("b"):
            assert reg.resolve() == "b"
        assert reg.override is None
        with pytest.raises(RuntimeError):
            with reg.use("b"):
                raise RuntimeError("boom")
        assert reg.override is None


class TestUnifiedFrontends:
    """The three pre-existing switchboards now share one Registry."""

    def test_kernels_engines_policies_are_registries(self):
        from repro.perf import engines, kernels
        from repro.sched import registry as sched

        assert isinstance(kernels.REGISTRY, Registry)
        assert isinstance(engines.REGISTRY, Registry)
        assert isinstance(sched.REGISTRY, Registry)

    def test_policy_names_still_exported(self):
        from repro.sched.registry import (
            ALL_POLICIES,
            REGISTRY,
            SINGLE_SERVER_POLICIES,
        )

        assert set(REGISTRY.names()) == set(SINGLE_SERVER_POLICIES)
        # Split is a topology, not a registered scheduler factory.
        assert "split" in ALL_POLICIES and "split" not in REGISTRY

    def test_engine_registry_contains_both_engines(self):
        from repro.perf.engines import REGISTRY

        assert set(REGISTRY.names()) == {"scalar", "batch"}
        assert REGISTRY.virtual == ("auto",)
