"""Tests for the streaming capacity planner."""

import numpy as np
import pytest

from repro.core.capacity import CapacityPlanner
from repro.core.streaming import StreamingPlanner
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ConfigurationError):
            StreamingPlanner(delta=0.0)
        with pytest.raises(ConfigurationError):
            StreamingPlanner(delta=0.1, fraction=0.0)
        with pytest.raises(ConfigurationError):
            StreamingPlanner(delta=0.1, window=0.0)
        with pytest.raises(ConfigurationError):
            StreamingPlanner(delta=0.1, window=5.0, replan_interval=10.0)

    def test_rejects_time_travel(self):
        planner = StreamingPlanner(delta=0.1)
        planner.observe(5.0)
        with pytest.raises(ConfigurationError, match="non-decreasing"):
            planner.observe(4.0)


class TestReplanning:
    def test_replans_on_interval(self):
        planner = StreamingPlanner(delta=0.1, window=20.0, replan_interval=5.0)
        snapshots = planner.observe_many(np.arange(0.0, 20.0, 0.5))
        assert len(snapshots) == len(planner.history)
        assert len(snapshots) >= 3
        times = [s.time for s in snapshots]
        assert all(b - a >= 5.0 - 1e-9 for a, b in zip(times, times[1:]))

    def test_no_snapshot_between_intervals(self):
        planner = StreamingPlanner(delta=0.1, window=20.0, replan_interval=5.0)
        assert planner.observe(1.0) is None
        assert planner.current is None

    def test_estimate_matches_offline_on_window(self, rng):
        """A window covering the whole stream reproduces the offline plan."""
        arrivals = np.sort(rng.uniform(0.0, 10.0, 300))
        planner = StreamingPlanner(
            delta=0.1, fraction=0.9, window=100.0, replan_interval=10.0
        )
        planner.observe_many(arrivals)
        planner.observe(10.0)  # force the final replan tick
        offline = CapacityPlanner(Workload(arrivals), 0.1).min_capacity(0.9)
        assert planner.current.cmin == pytest.approx(offline, rel=0.1)

    def test_window_eviction(self):
        planner = StreamingPlanner(delta=0.1, window=5.0, replan_interval=5.0)
        planner.observe_many(np.arange(0.0, 30.0, 0.1))
        assert planner.current.window_requests <= 51


class TestDriftTracking:
    def test_estimate_follows_rate_change(self, rng):
        """Rate quadruples at t=30: the estimate ramps up after the shift
        and the early estimates stay low."""
        slow = np.sort(rng.uniform(0.0, 30.0, 300))  # 10 IOPS
        fast = np.sort(rng.uniform(30.0, 60.0, 1200))  # 40 IOPS
        planner = StreamingPlanner(
            delta=0.2, fraction=0.9, window=10.0, replan_interval=2.0
        )
        planner.observe_many(np.concatenate([slow, fast]))
        times, estimates = planner.estimate_series()
        early = estimates[times < 28.0].mean()
        late = estimates[times > 45.0].mean()
        assert late > 2.0 * early

    def test_high_water_mark(self, rng):
        arrivals = np.sort(rng.uniform(0.0, 20.0, 500))
        planner = StreamingPlanner(delta=0.1, window=10.0, replan_interval=2.0)
        planner.observe_many(arrivals)
        assert planner.high_water_mark == max(s.cmin for s in planner.history)

    def test_empty_series(self):
        planner = StreamingPlanner(delta=0.1)
        times, estimates = planner.estimate_series()
        assert times.size == 0
        assert planner.high_water_mark == 0.0
