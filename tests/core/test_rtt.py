"""Tests for RTT decomposition: correctness, optimality, model agreement."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.bounds import max_admissible_bruteforce
from repro.core.rtt import (
    count_admitted,
    decompose,
    decompose_exact,
    decompose_fluid,
    primary_response_times,
)
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError

from ..conftest import random_workload


class TestFigure3Example:
    """The paper's worked example: C=1, delta=2, batches (2,2,1) at t=1,2,3.

    The text argues exactly one request must miss its deadline for this
    input (Figure 3 b/c shows two valid single-drop... per-busy-period
    choices); RTT admits 4 of 5.
    """

    def test_admits_four(self, toy_workload):
        result = decompose(toy_workload, 1.0, 2.0)
        assert result.n_admitted == 4
        assert result.n_overflow == 1

    def test_matches_offline_optimum(self, toy_workload):
        opt = max_admissible_bruteforce(toy_workload, 1.0, 2.0, discrete=True)
        assert decompose(toy_workload, 1.0, 2.0).n_admitted == opt

    def test_admitted_meet_deadline(self, toy_workload):
        result = decompose(toy_workload, 1.0, 2.0)
        responses = primary_response_times(result)
        assert np.all(responses <= 2.0 + 1e-9)

    def test_fluid_agrees(self, toy_workload):
        assert decompose_fluid(toy_workload, 1.0, 2.0).n_admitted == 4

    def test_exact_agrees(self, toy_workload):
        result = decompose_exact(toy_workload, 1, Fraction(2))
        assert result.n_admitted == 4


class TestBasicBehaviour:
    def test_empty_workload(self, empty_workload):
        result = decompose(empty_workload, 10.0, 0.1)
        assert result.n_requests == 0
        assert result.fraction_admitted == 1.0

    def test_single_request_always_admitted(self, single_request):
        result = decompose(single_request, 10.0, 0.1)
        assert result.n_admitted == 1

    def test_all_admitted_when_capacity_huge(self, uniform_workload):
        result = decompose(uniform_workload, 1e6, 0.01)
        assert result.n_admitted == len(uniform_workload)

    def test_tiny_capacity_rejects_excess(self):
        # 10 simultaneous arrivals, room for exactly C*delta = 2.
        w = Workload([1.0] * 10)
        result = decompose(w, 2.0, 1.0)
        assert result.n_admitted == 2
        # The first two in trace order are the admitted ones.
        assert result.admitted.tolist() == [True] * 2 + [False] * 8

    def test_capacity_below_one_per_deadline(self):
        # C*delta < 1: not even one request fits in the window.
        w = Workload([1.0, 2.0])
        result = decompose(w, 0.5, 1.0)
        assert result.n_admitted == 0

    def test_validation(self, toy_workload):
        with pytest.raises(ConfigurationError):
            decompose(toy_workload, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            decompose(toy_workload, 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            decompose_fluid(toy_workload, -1.0, 1.0)
        with pytest.raises(ConfigurationError):
            decompose_exact(toy_workload, 0, 1)

    def test_result_views(self, bursty_workload):
        result = decompose(bursty_workload, 50.0, 0.1)
        q1 = result.primary_workload()
        q2 = result.overflow_workload()
        assert len(q1) == result.n_admitted
        assert len(q2) == result.n_overflow
        assert len(q1) + len(q2) == len(bursty_workload)
        assert q1.name.endswith(".Q1")
        merged = np.sort(np.concatenate([q1.arrivals, q2.arrivals]))
        assert np.array_equal(merged, bursty_workload.arrivals)

    def test_max_queue_property(self, toy_workload):
        result = decompose(toy_workload, 3.0, 0.5)
        assert result.max_queue == pytest.approx(1.5)

    def test_count_admitted_matches_decompose(self, bursty_workload):
        instants, counts = bursty_workload.arrival_counts()
        for capacity in (10.0, 40.0, 120.0, 500.0):
            fast = count_admitted(
                instants.tolist(), counts.tolist(), capacity, 0.05
            )
            assert fast == decompose(bursty_workload, capacity, 0.05).n_admitted


class TestDeadlineGuarantee:
    """Every admitted request finishes within delta on a dedicated server."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_workloads(self, seed):
        w = random_workload(seed, n=60, horizon=4.0)
        capacity = float(np.random.default_rng(seed).integers(3, 30))
        delta = float(np.random.default_rng(seed + 1).choice([0.05, 0.2, 0.5]))
        result = decompose(w, capacity, delta)
        responses = primary_response_times(result)
        if responses.size:
            assert responses.max() <= delta + 1e-9


class TestOptimality:
    """RTT admits the offline-optimal number of requests (Lemmas 1-3)."""

    @pytest.mark.parametrize("seed", range(40))
    def test_discrete_model(self, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(3, 12))
        w = Workload(np.sort(np.round(gen.uniform(0, 3, n), 3)))
        capacity = float(gen.integers(1, 7))
        delta = float(gen.choice([0.2, 0.3, 0.5, 1.0]))
        opt = max_admissible_bruteforce(w, capacity, delta, discrete=True)
        assert decompose(w, capacity, delta).n_admitted == opt

    @pytest.mark.parametrize("seed", range(40))
    def test_fluid_model(self, seed):
        gen = np.random.default_rng(1000 + seed)
        n = int(gen.integers(3, 12))
        w = Workload(np.sort(np.round(gen.uniform(0, 3, n), 3)))
        capacity = float(gen.integers(1, 7))
        delta = float(gen.choice([0.2, 0.3, 0.5, 1.0]))
        opt = max_admissible_bruteforce(w, capacity, delta, discrete=False)
        assert decompose_fluid(w, capacity, delta).n_admitted == opt

    def test_fractional_c_delta_not_pessimistic(self):
        """The regression that motivated the deadline-form admission rule:

        with C*delta = 1.5 an integer-queue RTT rejects requests that can
        in fact meet their deadline behind a half-served predecessor.
        """
        w = Workload([0.454, 0.584, 0.995, 1.512, 1.798, 2.25, 2.524])
        opt = max_admissible_bruteforce(w, 3.0, 0.5, discrete=True)
        assert opt == 6
        assert decompose(w, 3.0, 0.5).n_admitted == 6


class TestModelAgreement:
    @pytest.mark.parametrize("seed", range(15))
    def test_float_matches_exact_on_dyadic_inputs(self, seed):
        """With power-of-two capacities, dyadic arrival times and dyadic
        deadlines, double arithmetic is exact, so the float and Fraction
        paths must classify identically."""
        gen = np.random.default_rng(seed)
        arrivals = np.sort(gen.integers(0, 4096, 50)) / 1024.0
        w = Workload(arrivals)
        capacity = int(gen.choice([1, 2, 4, 8, 16, 32]))
        delta = float(gen.choice([0.125, 0.25, 0.5, 1.0]))
        a = decompose(w, float(capacity), delta)
        b = decompose_exact(w, capacity, Fraction(delta))
        assert np.array_equal(a.admitted, b.admitted)

    @pytest.mark.parametrize("seed", range(15))
    def test_float_close_to_exact_on_arbitrary_inputs(self, seed):
        """On arbitrary floats the two may disagree only on knife-edge
        ties; admitted counts stay within a tiny margin."""
        gen = np.random.default_rng(seed)
        w = Workload(np.sort(np.round(gen.uniform(0, 5, 80), 4)))
        capacity = int(gen.integers(2, 25))
        delta = float(gen.choice([0.1, 0.25, 0.5]))
        a = decompose(w, float(capacity), delta)
        b = decompose_exact(w, capacity, Fraction(float(delta)))
        assert abs(a.n_admitted - b.n_admitted) <= 1

    def test_integral_c_delta_fluid_equals_discrete(self):
        """When C*delta is an integer the two server models admit the
        same count on batch-arrival workloads."""
        w = Workload.from_counts([0.0, 0.5, 1.0, 1.2], [4, 3, 5, 2])
        for capacity, delta in [(4.0, 1.0), (10.0, 0.5), (2.0, 2.0)]:
            d = decompose(w, capacity, delta).n_admitted
            f = decompose_fluid(w, capacity, delta).n_admitted
            assert d == f


class TestMonotonicity:
    def test_admitted_nondecreasing_in_capacity(self, bursty_workload):
        counts = [
            decompose(bursty_workload, c, 0.05).n_admitted
            for c in [5, 10, 20, 40, 80, 160, 320, 640]
        ]
        assert counts == sorted(counts)

    def test_admitted_nondecreasing_in_delta(self, bursty_workload):
        counts = [
            decompose(bursty_workload, 60.0, d).n_admitted
            for d in [0.01, 0.02, 0.05, 0.1, 0.2, 0.5]
        ]
        assert counts == sorted(counts)


class TestPrimaryResponseTimes:
    def test_empty(self, empty_workload):
        result = decompose(empty_workload, 5.0, 0.1)
        assert primary_response_times(result).size == 0

    def test_matches_sequential_recursion(self, uniform_workload):
        result = decompose(uniform_workload, 25.0, 0.2)
        arrivals = uniform_workload.arrivals[result.admitted]
        service = 1.0 / 25.0
        finish = 0.0
        expected = []
        for t in arrivals:
            finish = max(finish, t) + service
            expected.append(finish - t)
        assert np.allclose(primary_response_times(result), expected)
