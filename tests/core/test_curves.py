"""Tests for arrival/service curve machinery."""

import numpy as np
import pytest

from repro.core.curves import ArrivalCurve, ServiceCurve, busy_periods, scl_excess
from repro.core.workload import Workload
from repro.exceptions import WorkloadError


class TestArrivalCurve:
    def test_staircase_values(self, toy_workload):
        curve = ArrivalCurve(toy_workload)
        assert curve.instants.tolist() == [1.0, 2.0, 3.0]
        assert curve.cumulative.tolist() == [2, 4, 5]

    def test_call_scalar(self, toy_workload):
        curve = ArrivalCurve(toy_workload)
        assert curve(0.5) == 0
        assert curve(1.0) == 2  # right-continuous: includes the batch at 1
        assert curve(2.5) == 4
        assert curve(100.0) == 5

    def test_call_vector(self, toy_workload):
        curve = ArrivalCurve(toy_workload)
        values = curve(np.array([0.0, 1.5, 3.0]))
        assert values.tolist() == [0, 2, 5]

    def test_total(self, toy_workload, empty_workload):
        assert ArrivalCurve(toy_workload).total == 5
        assert ArrivalCurve(empty_workload).total == 0


class TestServiceCurve:
    def test_linear(self):
        sc = ServiceCurve(10.0)
        assert sc(0.0) == 0.0
        assert sc(2.0) == 20.0

    def test_negative_time_clamped(self):
        assert ServiceCurve(10.0)(-1.0) == 0.0

    def test_limit_is_shifted(self):
        sc = ServiceCurve(10.0)
        assert sc.limit(1.0, 0.5) == pytest.approx(15.0)

    def test_limit_negative_delta(self):
        with pytest.raises(WorkloadError):
            ServiceCurve(10.0).limit(1.0, -0.1)

    def test_invalid_capacity(self):
        with pytest.raises(WorkloadError):
            ServiceCurve(0.0)


class TestSCLExcess:
    def test_underloaded_never_positive(self, toy_workload):
        excess = scl_excess(toy_workload, 10.0, 1.0)
        assert np.all(excess <= 0)

    def test_overload_detected(self):
        # 5 simultaneous requests, capacity 1, delta 1: SCL(t=1) = 2.
        w = Workload([1.0] * 5)
        excess = scl_excess(w, 1.0, 1.0)
        assert excess.max() == pytest.approx(3.0)

    def test_figure3_instants(self, toy_workload):
        # C=1, delta=2: SCL(1)=3, SCL(2)=4, SCL(3)=5; A = 2, 4, 5.
        excess = scl_excess(toy_workload, 1.0, 2.0)
        assert excess.tolist() == [-1.0, 0.0, 0.0]


class TestBusyPeriods:
    def test_single_request(self, single_request):
        periods = busy_periods(single_request, 2.0)
        assert periods == [(1.0, 1.5)]

    def test_back_to_back(self):
        w = Workload([0.0, 0.1, 0.2])
        periods = busy_periods(w, 10.0)
        assert len(periods) == 1
        assert periods[0][1] == pytest.approx(0.3)

    def test_separated_bursts(self):
        w = Workload([0.0, 5.0])
        periods = busy_periods(w, 1.0)
        assert periods == [(0.0, 1.0), (5.0, 6.0)]

    def test_empty(self, empty_workload):
        assert busy_periods(empty_workload, 1.0) == []

    def test_invalid_capacity(self, toy_workload):
        with pytest.raises(WorkloadError):
            busy_periods(toy_workload, 0.0)

    def test_periods_cover_all_arrivals(self, bursty_workload):
        periods = busy_periods(bursty_workload, 50.0)
        for t in bursty_workload.arrivals:
            assert any(s <= t < e + 1e-9 for s, e in periods)
