"""Tests for workload transformation lineage (metadata provenance)."""

import numpy as np
import pytest

from repro.core.workload import Workload


@pytest.fixture
def base():
    return Workload(
        np.array([0.5, 1.0, 2.0, 3.5]),
        name="base",
        metadata={"origin": "synthetic"},
    )


def ops(workload):
    return [entry["op"] for entry in workload.metadata.get("lineage", [])]


class TestLineageRecording:
    def test_shift_records_offset_and_wrap(self, base):
        shifted = base.shift(1.0)
        assert shifted.metadata["lineage"] == [
            {"op": "shift", "offset": 1.0, "wrap": False}
        ]
        wrapped = base.shift(1.0, wrap=True)
        assert wrapped.metadata["lineage"][-1]["wrap"] is True

    def test_window_scale_head(self, base):
        assert ops(base.window(0.0, 2.0)) == ["window"]
        assert ops(base.scale_rate(2.0)) == ["scale_rate"]
        assert ops(base.head(2)) == ["head"]
        entry = base.window(1.0, 3.0).metadata["lineage"][0]
        assert entry == {"op": "window", "start": 1.0, "end": 3.0}

    def test_with_sizes_records(self, base):
        sized = base.with_sizes(np.ones(4) * 2.0)
        assert sized.metadata["lineage"] == [{"op": "with_sizes", "sized": True}]
        cleared = sized.with_sizes(None)
        assert ops(cleared) == ["with_sizes", "with_sizes"]
        assert cleared.metadata["lineage"][-1]["sized"] is False

    def test_chain_accumulates_in_order(self, base):
        derived = base.shift(1.0).window(0.0, 10.0).scale_rate(2.0).head(3)
        assert ops(derived) == ["shift", "window", "scale_rate", "head"]
        # Source metadata survives the whole chain.
        assert derived.metadata["origin"] == "synthetic"

    def test_merge_records_every_part(self, base):
        other = Workload([0.2, 4.0], name="other", metadata={"origin": "trace"})
        merged = base.merge(other)
        entry = merged.metadata["lineage"][-1]
        assert entry["op"] == "merge"
        names = [part["name"] for part in entry["parts"]]
        assert names == ["base", "other"]
        # The historical provenance loss: merge now keeps each part's
        # metadata instead of dropping it.
        assert entry["parts"][1]["metadata"]["origin"] == "trace"

    def test_lineage_does_not_leak_into_source(self, base):
        base.shift(1.0)
        base.merge(Workload([9.0], name="x"))
        assert "lineage" not in base.metadata


class TestSizesThroughTransforms:
    @pytest.fixture
    def sized(self):
        return Workload(
            np.array([0.5, 1.0, 2.0, 3.5]),
            name="sized",
            sizes=np.array([1.0, 2.0, 3.0, 4.0]),
        )

    def test_window_filters_sizes_with_arrivals(self, sized):
        cut = sized.window(0.75, 2.5)
        assert np.array_equal(cut.arrivals, [0.25, 1.25])
        assert np.array_equal(cut.sizes, [2.0, 3.0])

    def test_head_truncates_sizes(self, sized):
        assert np.array_equal(sized.head(2).sizes, [1.0, 2.0])

    def test_scale_rate_keeps_sizes(self, sized):
        assert np.array_equal(sized.scale_rate(2.0).sizes, sized.sizes)

    def test_shift_wrap_keeps_size_alignment(self, sized):
        wrapped = sized.shift(1.0, wrap=True)
        pairs = dict(zip(np.round(wrapped.arrivals, 9), wrapped.sizes))
        duration = sized.duration
        expected = {
            round((t + 1.0) % duration, 9): s
            for t, s in zip(sized.arrivals, sized.sizes)
        }
        assert pairs == expected

    def test_merge_aligns_mixed_sizes(self, sized):
        unsized = Workload([0.1, 1.5], name="plain")
        merged = sized.merge(unsized)
        assert merged.has_sizes
        order = np.argsort(np.concatenate([sized.arrivals, unsized.arrivals]),
                           kind="stable")
        expected = np.concatenate([sized.sizes, [1.0, 1.0]])[order]
        assert np.array_equal(merged.sizes, expected)

    def test_merge_of_unsized_stays_unsized(self, base=None):
        a = Workload([1.0, 2.0], name="a")
        b = Workload([1.5], name="b")
        assert a.merge(b).sizes is None
