"""Tests for multi-client consolidation."""

import numpy as np
import pytest

from repro.core.capacity import CapacityPlanner
from repro.core.consolidation import (
    ConsolidationResult,
    consolidate,
    self_consolidation,
    shifted_merge,
)
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError


@pytest.fixture
def two_bursts(rng):
    a = Workload(np.sort(rng.uniform(0.0, 10.0, 200)), name="a")
    b = Workload(np.sort(rng.uniform(0.0, 10.0, 200)), name="b")
    return a, b


class TestConsolidate:
    def test_estimate_is_sum_of_individuals(self, two_bursts):
        a, b = two_bursts
        result = consolidate([a, b], 0.05, 0.9)
        assert result.estimate == pytest.approx(sum(result.individual))
        assert result.client_names == ("a", "b")

    def test_actual_matches_direct_planning(self, two_bursts):
        a, b = two_bursts
        result = consolidate([a, b], 0.05, 0.9)
        direct = CapacityPlanner(a.merge(b), 0.05).min_capacity(0.9)
        assert result.actual == direct

    def test_needs_two_workloads(self, two_bursts):
        with pytest.raises(ConfigurationError, match="two"):
            consolidate([two_bursts[0]], 0.05)

    def test_custom_merged_stream(self, two_bursts):
        a, b = two_bursts
        shifted = consolidate([a, b], 0.05, 0.9, merged=a.merge(b.shift(5.0)))
        assert isinstance(shifted, ConsolidationResult)

    def test_ratio_and_error(self):
        result = ConsolidationResult(
            client_names=("x", "y"),
            delta=0.01,
            fraction=0.9,
            individual=(100.0, 100.0),
            estimate=200.0,
            actual=150.0,
        )
        assert result.ratio == pytest.approx(0.75)
        assert result.relative_error == pytest.approx(50.0 / 150.0)

    def test_independent_streams_subadditive_at_full_fraction(self, two_bursts):
        """Bursts of independent streams rarely align, so the worst-case
        estimate over-provisions — the premise of Section 4.4."""
        a, b = two_bursts
        result = consolidate([a, b], 0.02, 1.0)
        assert result.actual <= result.estimate


class TestShiftedMerge:
    def test_doubles_request_count(self, uniform_workload):
        merged = shifted_merge(uniform_workload, 1.0)
        assert len(merged) == 2 * len(uniform_workload)

    def test_zero_shift_aligns_exactly(self, uniform_workload):
        merged = shifted_merge(uniform_workload, 0.0)
        # Perfect alignment: every arrival duplicated.
        assert np.array_equal(merged.arrivals[::2], uniform_workload.arrivals)


class TestSelfConsolidation:
    def test_estimate_is_double(self, bursty_workload):
        result = self_consolidation(bursty_workload, 0.05, 0.9, offset=1.0)
        single = CapacityPlanner(bursty_workload, 0.05).min_capacity(0.9)
        assert result.estimate == pytest.approx(2.0 * single)

    def test_shifted_self_merge_subadditive_at_100(self, bursty_workload):
        """A single burst shifted off itself cannot require the doubled
        worst case."""
        result = self_consolidation(bursty_workload, 0.02, 1.0, offset=3.0)
        assert result.ratio < 0.95

    def test_aligned_self_merge_additive(self, bursty_workload):
        """With no shift, bursts align exactly: the estimate is exact
        (up to the integer-capacity grid)."""
        merged = shifted_merge(bursty_workload, 0.0)
        result = consolidate(
            [bursty_workload, bursty_workload], 0.02, 1.0, merged=merged
        )
        assert result.ratio == pytest.approx(1.0, abs=0.02)
