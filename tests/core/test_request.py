"""Tests for repro.core.request."""

import pytest

from repro.core.request import IOKind, QoSClass, Request


class TestIOKind:
    @pytest.mark.parametrize("token", ["r", "R", "Read", " r "])
    def test_parse_read(self, token):
        assert IOKind.parse(token) is IOKind.READ

    @pytest.mark.parametrize("token", ["w", "W", "Write"])
    def test_parse_write(self, token):
        assert IOKind.parse(token) is IOKind.WRITE

    def test_parse_garbage(self):
        with pytest.raises(ValueError, match="opcode"):
            IOKind.parse("x")


class TestRequest:
    def test_defaults(self):
        r = Request(arrival=1.0)
        assert r.qos_class is QoSClass.UNCLASSIFIED
        assert r.deadline is None
        assert r.completion is None

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Request(arrival=-0.1)

    def test_response_time(self):
        r = Request(arrival=1.0)
        r.completion = 1.25
        assert r.response_time == pytest.approx(0.25)

    def test_response_time_before_completion(self):
        r = Request(arrival=1.0)
        with pytest.raises(ValueError, match="not completed"):
            _ = r.response_time

    def test_classify_primary_sets_deadline(self):
        r = Request(arrival=2.0)
        r.classify(QoSClass.PRIMARY, delta=0.01)
        assert r.deadline == pytest.approx(2.01)
        assert r.is_primary and not r.is_overflow

    def test_classify_primary_requires_delta(self):
        r = Request(arrival=2.0)
        with pytest.raises(ValueError, match="delta"):
            r.classify(QoSClass.PRIMARY)

    def test_classify_overflow_clears_deadline(self):
        r = Request(arrival=2.0)
        r.classify(QoSClass.PRIMARY, delta=0.01)
        r.classify(QoSClass.OVERFLOW)
        assert r.deadline is None
        assert r.is_overflow

    def test_met_deadline_true(self):
        r = Request(arrival=0.0)
        r.classify(QoSClass.PRIMARY, delta=0.01)
        r.completion = 0.01
        assert r.met_deadline

    def test_met_deadline_false(self):
        r = Request(arrival=0.0)
        r.classify(QoSClass.PRIMARY, delta=0.01)
        r.completion = 0.0101
        assert not r.met_deadline

    def test_met_deadline_incomplete_primary(self):
        r = Request(arrival=0.0)
        r.classify(QoSClass.PRIMARY, delta=0.01)
        assert not r.met_deadline

    def test_no_deadline_trivially_met(self):
        r = Request(arrival=0.0)
        assert r.met_deadline

    def test_qos_class_ordering(self):
        # IntEnum values are stable: used as fair-queue flow ids.
        assert int(QoSClass.PRIMARY) == 1
        assert int(QoSClass.OVERFLOW) == 2
