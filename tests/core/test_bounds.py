"""Tests for the theoretical bounds (Lemma 1 and friends)."""

import numpy as np
import pytest

from repro.core.bounds import (
    lemma1_lower_bound,
    lower_bound_drops,
    max_admissible_bruteforce,
    sgn,
    subset_feasible,
)
from repro.core.rtt import decompose, decompose_fluid
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError

from ..conftest import random_workload


class TestSgn:
    def test_negative_is_zero(self):
        assert sgn(-0.5) == 0

    def test_zero(self):
        assert sgn(0.0) == 0

    def test_positive_ceils(self):
        assert sgn(0.1) == 1
        assert sgn(1.0) == 1
        assert sgn(1.5) == 2


class TestLemma1:
    def test_no_overload(self, toy_workload):
        assert lemma1_lower_bound(toy_workload, 10.0, 1.0) == 0

    def test_simultaneous_batch(self):
        # 5 at once; SCL at t=1 is C*(1+1)=2 -> at least 3 must miss.
        w = Workload([1.0] * 5)
        assert lemma1_lower_bound(w, 1.0, 1.0) == 3

    def test_empty(self, empty_workload):
        assert lemma1_lower_bound(empty_workload, 1.0, 1.0) == 0

    def test_validation(self, toy_workload):
        with pytest.raises(ConfigurationError):
            lemma1_lower_bound(toy_workload, 0.0, 1.0)

    @pytest.mark.parametrize("seed", range(20))
    def test_is_a_true_lower_bound(self, seed):
        """No algorithm (not even the fluid optimum) beats Lemma 1."""
        w = random_workload(seed, n=12, horizon=2.0)
        gen = np.random.default_rng(seed)
        capacity = float(gen.integers(1, 8))
        delta = float(gen.choice([0.2, 0.5, 1.0]))
        bound = lemma1_lower_bound(w, capacity, delta)
        opt = max_admissible_bruteforce(w, capacity, delta, discrete=False)
        assert len(w) - opt >= bound


class TestLowerBoundDrops:
    def test_sums_over_busy_periods(self):
        # Two identical overloaded bursts far apart: drops add up.
        burst = [0.0] * 4
        w = Workload(burst + [100.0 + t for t in burst])
        single = Workload(burst)
        # A(0)=4 but S(0+delta)=1: three of the four must miss.
        per_burst = lemma1_lower_bound(single, 1.0, 1.0)
        assert per_burst == 3
        assert lower_bound_drops(w, 1.0, 1.0) == 6

    def test_matches_lemma1_for_single_busy_period(self):
        w = Workload([0.0] * 5)
        assert lower_bound_drops(w, 1.0, 1.0) == lemma1_lower_bound(w, 1.0, 1.0)

    @pytest.mark.parametrize("seed", range(25))
    def test_rtt_fluid_attains_bound_or_better(self, seed):
        """Fluid RTT's drops are never below the lower bound (validity)
        and the bound should usually be tight on these small cases."""
        w = random_workload(seed, n=14, horizon=3.0)
        gen = np.random.default_rng(seed)
        capacity = float(gen.integers(1, 6))
        delta = float(gen.choice([0.25, 0.5, 1.0]))
        bound = lower_bound_drops(w, capacity, delta)
        drops = decompose_fluid(w, capacity, delta).n_overflow
        assert drops >= bound

    @pytest.mark.parametrize("seed", range(25))
    def test_discrete_rtt_respects_bound(self, seed):
        w = random_workload(100 + seed, n=14, horizon=3.0)
        gen = np.random.default_rng(seed)
        capacity = float(gen.integers(1, 6))
        delta = float(gen.choice([0.25, 0.5, 1.0]))
        bound = lower_bound_drops(w, capacity, delta)
        drops = decompose(w, capacity, delta).n_overflow
        assert drops >= bound


class TestSubsetFeasible:
    def test_feasible_single(self):
        assert subset_feasible([0.0], 10.0, 1.0)

    def test_infeasible_batch(self):
        assert not subset_feasible([0.0, 0.0, 0.0], 1.0, 1.0)

    def test_discrete_stricter_than_fluid(self):
        # C*delta = 1.5: fluid fits 1.5 requests' worth, discrete only 1.
        arrivals = [0.0, 0.0]
        assert not subset_feasible(arrivals, 3.0, 0.5, discrete=True)
        # fluid: backlog 2 > 1.5 -> also infeasible
        assert not subset_feasible(arrivals, 3.0, 0.5, discrete=False)
        # One arrival shortly after another can ride the fractional slack.
        arrivals = [0.0, 0.25]
        assert subset_feasible(arrivals, 3.0, 0.5, discrete=True)

    def test_empty_subset_feasible(self):
        assert subset_feasible([], 1.0, 1.0)


class TestBruteForce:
    def test_limits_input_size(self):
        w = Workload([0.0] * 21)
        with pytest.raises(ConfigurationError, match="20"):
            max_admissible_bruteforce(w, 1.0, 1.0)

    def test_all_feasible(self, toy_workload):
        assert max_admissible_bruteforce(toy_workload, 100.0, 1.0) == 5

    def test_none_feasible(self):
        w = Workload([0.0, 0.0])
        # C*delta < 1: even a single request misses.
        assert max_admissible_bruteforce(w, 0.5, 1.0) == 0
