"""Tests for SLA pricing."""

import numpy as np
import pytest

from repro.core.pricing import PricedTier, burstiness_discount, price_menu, reserve_cost
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError


class TestReserveCost:
    def test_includes_surplus(self, bursty_workload):
        from repro.core.capacity import CapacityPlanner

        cmin = CapacityPlanner(bursty_workload, 0.05).min_capacity(0.9)
        assert reserve_cost(bursty_workload, 0.9, 0.05) == pytest.approx(
            cmin + 20.0
        )

    def test_custom_surplus(self, bursty_workload):
        a = reserve_cost(bursty_workload, 0.9, 0.05, delta_c=0.0)
        b = reserve_cost(bursty_workload, 0.9, 0.05, delta_c=5.0)
        assert b == a + 5.0


class TestPriceMenu:
    def test_anchored_at_worst_case(self, bursty_workload):
        menu = price_menu(bursty_workload, 0.05)
        by_fraction = {t.fraction: t for t in menu}
        assert by_fraction[1.0].relative_cost == pytest.approx(1.0)
        assert by_fraction[1.0].discount == pytest.approx(0.0)

    def test_monotone_pricing(self, bursty_workload):
        menu = price_menu(bursty_workload, 0.05)
        costs = [t.relative_cost for t in menu]
        assert costs == sorted(costs)

    def test_lower_tiers_discounted(self, bursty_workload):
        menu = price_menu(bursty_workload, 0.05)
        ninety = next(t for t in menu if t.fraction == 0.90)
        assert ninety.discount > 0.2  # bursty workload: sizeable saving

    def test_anchor_added_if_missing(self, bursty_workload):
        menu = price_menu(bursty_workload, 0.05, fractions=(0.9, 0.95))
        assert any(t.fraction == 1.0 for t in menu)

    def test_tier_type(self, bursty_workload):
        menu = price_menu(bursty_workload, 0.05)
        assert all(isinstance(t, PricedTier) for t in menu)


class TestBurstinessDiscount:
    def test_smooth_client_rewarded(self, bursty_workload):
        """A perfectly paced client is cheaper to host than the bursty
        reference — the paper's concessional-terms story."""
        paced = Workload(
            np.arange(2000) * 0.01, name="paced"
        )  # exactly 100 IOPS
        discount = burstiness_discount(paced, bursty_workload, 0.9, 0.05)
        assert discount > 0.2

    def test_self_reference_zero(self, bursty_workload):
        discount = burstiness_discount(
            bursty_workload, bursty_workload, 0.9, 0.05
        )
        assert discount == pytest.approx(0.0, abs=0.02)

    def test_validation(self, bursty_workload, empty_workload):
        with pytest.raises(ConfigurationError):
            burstiness_discount(empty_workload, bursty_workload, 0.9, 0.05)
