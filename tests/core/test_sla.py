"""Tests for graduated SLAs."""

import pytest

from repro.core.sla import GraduatedSLA, SLATier
from repro.exceptions import ConfigurationError


class TestSLATier:
    def test_valid(self):
        tier = SLATier(fraction=0.9, delta=0.01)
        assert tier.fraction == 0.9

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.1])
    def test_bad_fraction(self, fraction):
        with pytest.raises(ConfigurationError):
            SLATier(fraction=fraction, delta=0.01)

    def test_bad_delta(self):
        with pytest.raises(ConfigurationError):
            SLATier(fraction=0.9, delta=0.0)


class TestGraduatedSLA:
    def test_from_tuples(self):
        sla = GraduatedSLA([(0.9, 0.01), (0.99, 0.05)])
        assert len(sla) == 2

    def test_tiers_sorted_by_fraction(self):
        sla = GraduatedSLA([(0.99, 0.05), (0.9, 0.01)])
        assert [t.fraction for t in sla] == [0.9, 0.99]
        assert sla.strictest.fraction == 0.9

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="tier"):
            GraduatedSLA([])

    def test_inconsistent_ordering_rejected(self):
        # 99% within 5 ms is stricter than 90% within 10 ms: nonsense.
        with pytest.raises(ConfigurationError, match="inconsistent"):
            GraduatedSLA([(0.9, 0.010), (0.99, 0.005)])

    def test_duplicate_fraction_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            GraduatedSLA([(0.9, 0.01), (0.9, 0.02)])

    def test_single_tier(self):
        sla = GraduatedSLA([SLATier(1.0, 0.01)])
        assert sla.strictest.fraction == 1.0


class TestEvaluate:
    def test_all_met(self):
        sla = GraduatedSLA([(0.9, 0.010), (1.0, 0.100)])
        samples = [0.005] * 95 + [0.05] * 5
        report = sla.evaluate(samples)
        assert all(t.met for t in report)
        assert sla.is_met_by(samples)

    def test_tier_violated(self):
        sla = GraduatedSLA([(0.9, 0.010)])
        samples = [0.005] * 80 + [0.05] * 20  # only 80% within 10 ms
        report = sla.evaluate(samples)
        assert not report[0].met
        assert report[0].achieved_fraction == pytest.approx(0.8)
        assert report[0].margin == pytest.approx(-0.1)

    def test_empty_sample_trivially_met(self):
        sla = GraduatedSLA([(0.9, 0.010)])
        assert sla.is_met_by([])

    def test_boundary_inclusive(self):
        sla = GraduatedSLA([(1.0, 0.010)])
        assert sla.is_met_by([0.010])

    def test_margin_positive_when_overachieving(self):
        sla = GraduatedSLA([(0.5, 0.010)])
        report = sla.evaluate([0.001] * 10)
        assert report[0].margin == pytest.approx(0.5)

    def test_report_aligned_with_tiers(self):
        sla = GraduatedSLA([(0.9, 0.01), (0.99, 0.05), (1.0, 0.5)])
        report = sla.evaluate([0.001])
        assert [r.tier.fraction for r in report] == [0.9, 0.99, 1.0]
