"""Tests for decomposition-based admission control."""

import numpy as np
import pytest

from repro.core.admission import AdmissionController
from repro.core.sla import GraduatedSLA
from repro.core.workload import Workload
from repro.exceptions import AdmissionError, ConfigurationError


@pytest.fixture
def client(rng):
    floor = rng.uniform(0.0, 10.0, 300)
    burst = 4.0 + rng.uniform(0.0, 0.2, 150)
    return Workload(np.sort(np.concatenate([floor, burst])), name="client")


@pytest.fixture
def sla():
    return GraduatedSLA([(0.9, 0.05)])


class TestValidation:
    def test_capacity_positive(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(server_capacity=0.0)

    def test_headroom_range(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(server_capacity=100.0, headroom=1.0)


class TestRequiredCapacity:
    def test_worst_case_exceeds_decomposed(self, client, sla):
        decomposed = AdmissionController(1e6).required_capacity(client, sla)
        worst = AdmissionController(1e6, worst_case=True).required_capacity(
            client, sla
        )
        assert worst > decomposed

    def test_max_over_tiers(self, client):
        sla = GraduatedSLA([(0.9, 0.05), (0.99, 0.2)])
        controller = AdmissionController(1e6)
        per_tier = [
            controller.required_capacity(client, GraduatedSLA([(t.fraction, t.delta)]))
            for t in sla
        ]
        assert controller.required_capacity(client, sla) == max(per_tier)


class TestAdmission:
    def test_admits_until_full(self, client, sla):
        need = AdmissionController(1e6).required_capacity(client, sla)
        controller = AdmissionController(server_capacity=2.5 * need)
        assert controller.try_admit(client, sla) is not None
        assert controller.try_admit(client, sla) is not None
        assert controller.try_admit(client, sla) is None
        assert len(controller.clients) == 2

    def test_decomposition_admits_more_clients(self, client, sla):
        """The paper's admission-control payoff: decomposed sizing packs
        more clients onto the same server than worst-case sizing."""
        worst_need = AdmissionController(1e6, worst_case=True).required_capacity(
            client, sla
        )
        # Room for ~3 worst-case clients; decomposed sizing (here ~70% of
        # worst-case) must fit at least one more.
        capacity = 3.2 * worst_need
        worst = AdmissionController(capacity, worst_case=True)
        smart = AdmissionController(capacity)
        while worst.try_admit(client, sla):
            pass
        while smart.try_admit(client, sla):
            pass
        assert len(smart.clients) > len(worst.clients)

    def test_admit_raises_with_shortfall(self, client, sla):
        controller = AdmissionController(server_capacity=1.0)
        with pytest.raises(AdmissionError, match="cannot admit"):
            controller.admit(client, sla)

    def test_headroom_reduces_admissions(self, client, sla):
        need = AdmissionController(1e6).required_capacity(client, sla)
        tight = AdmissionController(2.1 * need, headroom=0.2)
        loose = AdmissionController(2.1 * need)
        while tight.try_admit(client, sla):
            pass
        while loose.try_admit(client, sla):
            pass
        assert len(tight.clients) < len(loose.clients)

    def test_committed_and_available(self, client, sla):
        controller = AdmissionController(server_capacity=1e5)
        before = controller.available
        admitted = controller.admit(client, sla)
        assert controller.committed == admitted.planned_capacity
        assert controller.available == pytest.approx(
            before - admitted.planned_capacity
        )

    def test_release(self, client, sla):
        controller = AdmissionController(server_capacity=1e5)
        controller.admit(client, sla)
        controller.release("client")
        assert controller.committed == 0.0

    def test_release_unknown(self):
        controller = AdmissionController(server_capacity=100.0)
        with pytest.raises(AdmissionError, match="no admitted client"):
            controller.release("ghost")
