"""Cross-validation of the RTT kernel backends (repro.perf).

Property-based parity suite: the scalar reference, the numpy safe-run
compression backend and (when a compiler is present) the native C
backend must agree on admission counts, per-batch admitted counts and
per-request masks — including against the Fraction-exact reference
``decompose_exact`` — across random bursty workloads, fractional
``C * delta`` products, simultaneous-arrival batches and empty traces.

Inputs follow the repo's property-test conventions (millisecond arrival
grid, dyadic capacities/deadlines) so that admission decisions sit far
from the EPS floor boundary and every backend is exactly comparable.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rtt import decompose, decompose_exact
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.perf import (
    ENV_VAR,
    NUMPY_MIN_BATCHES,
    active_backend,
    admitted_per_batch,
    available_backends,
    count_admitted,
    count_admitted_sweep,
    dispatch_backend,
    set_backend,
    use_backend,
)

BACKENDS = available_backends()

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

#: Batched arrival streams on a millisecond grid: sorted distinct
#: instants, each with 1..40 simultaneous arrivals (bursty by design).
batched_streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=20000), st.integers(1, 40)),
    min_size=0,
    max_size=60,
    unique_by=lambda pair: pair[0],
).map(
    lambda pairs: (
        np.array(sorted(p[0] for p in pairs), dtype=float) / 1000.0,
        np.array([p[1] for p in sorted(pairs)], dtype=np.int64),
    )
)

#: Dyadic capacities, deliberately including values whose ``C * delta``
#: is fractional (the regime where the deadline form and the paper's
#: integer-queue form differ).
capacities = st.integers(min_value=1, max_value=96).map(lambda k: k / 8.0)

#: Dyadic response-time bounds.
deltas = st.sampled_from([0.125, 0.25, 0.5, 1.0, 2.0])


def _consistent(instants, counts, capacity, delta):
    """Assert every available backend agrees; return the common answer."""
    reference = count_admitted(instants, counts, capacity, delta, backend="scalar")
    per_batch = admitted_per_batch(instants, counts, capacity, delta, backend="scalar")
    for name in BACKENDS:
        assert count_admitted(instants, counts, capacity, delta, backend=name) == reference
        np.testing.assert_array_equal(
            admitted_per_batch(instants, counts, capacity, delta, backend=name),
            per_batch,
            err_msg=f"backend {name} per-batch mismatch",
        )
    assert int(per_batch.sum()) == reference
    assert np.all(per_batch <= counts)
    return reference


# ---------------------------------------------------------------------------
# Backend parity
# ---------------------------------------------------------------------------


@given(batched_streams, capacities, deltas)
@settings(max_examples=150, deadline=None)
def test_backends_agree_on_random_bursty_streams(stream, capacity, delta):
    instants, counts = stream
    _consistent(instants, counts, capacity, delta)


@given(batched_streams, st.lists(capacities, min_size=1, max_size=6), deltas)
@settings(max_examples=60, deadline=None)
def test_sweep_matches_individual_calls(stream, caps, delta):
    instants, counts = stream
    expected = [
        count_admitted(instants, counts, c, delta, backend="scalar") for c in caps
    ]
    for name in BACKENDS:
        got = count_admitted_sweep(instants, counts, caps, delta, backend=name)
        assert got.tolist() == expected, f"backend {name} sweep mismatch"


@given(capacities, deltas)
@settings(max_examples=20, deadline=None)
def test_empty_trace(capacity, delta):
    empty_t = np.array([], dtype=float)
    empty_n = np.array([], dtype=np.int64)
    for name in BACKENDS:
        assert count_admitted(empty_t, empty_n, capacity, delta, backend=name) == 0
        assert admitted_per_batch(empty_t, empty_n, capacity, delta, backend=name).size == 0
        assert count_admitted_sweep(
            empty_t, empty_n, [capacity], delta, backend=name
        ).tolist() == [0]


@pytest.mark.parametrize("backend", BACKENDS)
def test_accepts_plain_sequences(backend):
    # Kernels take lists as well as arrays (the public count_admitted
    # contract predates the perf layer).
    assert count_admitted([0.0, 0.5, 1.0], [2, 2, 2], 4.0, 0.5, backend=backend) == 6


def test_single_giant_batch():
    # One batch larger than C * delta: exactly floor(C * delta) admitted.
    instants = np.array([1.0])
    counts = np.array([1000], dtype=np.int64)
    for name in BACKENDS:
        assert count_admitted(instants, counts, 8.0, 2.5, backend=name) == 20


# ---------------------------------------------------------------------------
# Parity with the Fraction-exact reference
# ---------------------------------------------------------------------------


@given(batched_streams, capacities, deltas)
@settings(max_examples=60, deadline=None)
def test_mask_matches_decompose_exact(stream, capacity, delta):
    instants, counts = stream
    arrivals = np.repeat(instants, counts)
    workload = Workload(arrivals)
    exact = decompose_exact(workload, Fraction(capacity), Fraction(delta))
    for name in BACKENDS:
        with use_backend(name):
            result = decompose(workload, capacity, delta)
        np.testing.assert_array_equal(
            result.admitted, exact.admitted, err_msg=f"backend {name} vs exact"
        )


# ---------------------------------------------------------------------------
# Registry behavior
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_scalar_and_numpy_always_available(self):
        assert "scalar" in BACKENDS
        assert "numpy" in BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            count_admitted([0.0], [1], 1.0, 1.0, backend="cuda")
        with pytest.raises(ConfigurationError):
            set_backend("cuda")

    def test_set_backend_and_restore(self):
        set_backend("scalar")
        try:
            assert active_backend() == "scalar"
        finally:
            set_backend(None)
        assert active_backend() in BACKENDS

    def test_use_backend_restores_on_exit(self):
        before = active_backend()
        with use_backend("numpy"):
            assert active_backend() == "numpy"
        assert active_backend() == before

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert active_backend() == "numpy"
        monkeypatch.setenv(ENV_VAR, "nonsense")
        with pytest.raises(ConfigurationError):
            active_backend()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        with use_backend("scalar"):
            assert active_backend() == "scalar"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            count_admitted([0.0], [1], 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            count_admitted([0.0], [1], 1.0, -1.0)
        with pytest.raises(ConfigurationError):
            count_admitted_sweep([0.0], [1], [1.0, -2.0], 1.0)


class TestAutoDispatchCrossover:
    """Regression for the size-aware ``auto`` crossover.

    BENCH_kernels.json showed numpy *losing* to scalar (0.85x) on small
    per-call batch counts: array allocation and safe-run compression
    cost more than they save below ~1000 batches.  ``auto`` without a
    native build must therefore dispatch by input size.
    """

    @pytest.fixture(autouse=True)
    def _auto_without_native(self, monkeypatch):
        """Force the auto rule with no env/override and no native build."""
        from repro.perf import kernels, native

        monkeypatch.delenv(ENV_VAR, raising=False)
        monkeypatch.setattr(kernels.REGISTRY, "_override", None)
        monkeypatch.setattr(native, "available", lambda: False)

    def test_small_inputs_dispatch_to_scalar(self):
        assert dispatch_backend(0) == "scalar"
        assert dispatch_backend(NUMPY_MIN_BATCHES - 1) == "scalar"

    def test_large_inputs_dispatch_to_numpy(self):
        assert dispatch_backend(NUMPY_MIN_BATCHES) == "numpy"
        assert dispatch_backend(40000) == "numpy"

    def test_native_ignores_size_threshold(self, monkeypatch):
        """Native beats both at every measured size: no crossover."""
        from repro.perf import native

        monkeypatch.setattr(native, "available", lambda: True)
        assert dispatch_backend(1) == "native"
        assert dispatch_backend(NUMPY_MIN_BATCHES) == "native"

    def test_explicit_backend_beats_size_rule(self):
        """An explicit request is always honored, whatever the size."""
        with use_backend("numpy"):
            assert dispatch_backend(1) == "numpy"
        with use_backend("scalar"):
            assert dispatch_backend(10 * NUMPY_MIN_BATCHES) == "scalar"

    def test_env_var_beats_size_rule(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert dispatch_backend(1) == "numpy"

    def test_small_call_still_correct_under_auto(self):
        """The dispatch switch changes speed, never answers."""
        instants = [0.0, 0.25, 0.5]
        counts = [4, 4, 4]
        auto = count_admitted(instants, counts, 8.0, 0.5)
        assert auto == count_admitted(
            instants, counts, 8.0, 0.5, backend="scalar"
        )
        assert auto == count_admitted(
            instants, counts, 8.0, 0.5, backend="numpy"
        )
