"""Tests for the capacity planner (binary search for Cmin)."""

import numpy as np
import pytest

from repro.core.capacity import CapacityPlan, CapacityPlanner, min_capacity
from repro.core.rtt import decompose
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError

from ..conftest import random_workload


class TestMinCapacity:
    def test_minimality_and_sufficiency(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05)
        for fraction in (0.8, 0.9, 0.95, 1.0):
            cmin = planner.min_capacity(fraction)
            required = planner._required_count(fraction)
            assert planner.admitted_at(cmin) >= required
            assert planner.admitted_at(cmin - 1) < required

    def test_monotone_in_fraction(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05)
        caps = [planner.min_capacity(f) for f in (0.5, 0.8, 0.9, 0.99, 1.0)]
        assert caps == sorted(caps)

    def test_monotone_in_delta(self, bursty_workload):
        caps = [
            CapacityPlanner(bursty_workload, d).min_capacity(0.9)
            for d in (0.01, 0.02, 0.05, 0.1)
        ]
        assert caps == sorted(caps, reverse=True)

    def test_full_fraction_admits_everything(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.02)
        cmin = planner.min_capacity(1.0)
        result = decompose(bursty_workload, cmin, 0.02)
        assert result.n_admitted == len(bursty_workload)

    def test_empty_workload(self, empty_workload):
        planner = CapacityPlanner(empty_workload, 0.1)
        assert planner.min_capacity(1.0) == 1.0

    def test_single_request(self, single_request):
        planner = CapacityPlanner(single_request, 0.1)
        # One request in 100 ms -> 10 IOPS suffices and is minimal.
        assert planner.min_capacity(1.0) == 10.0

    def test_invalid_fraction(self, uniform_workload):
        planner = CapacityPlanner(uniform_workload, 0.1)
        with pytest.raises(ConfigurationError):
            planner.min_capacity(0.0)
        with pytest.raises(ConfigurationError):
            planner.min_capacity(1.5)

    def test_invalid_delta(self, uniform_workload):
        with pytest.raises(ConfigurationError):
            CapacityPlanner(uniform_workload, 0.0)

    def test_real_valued_search(self, uniform_workload):
        planner = CapacityPlanner(
            uniform_workload, 0.05, integral=False, tolerance=0.01
        )
        cmin = planner.min_capacity(0.9)
        integral = CapacityPlanner(uniform_workload, 0.05).min_capacity(0.9)
        assert cmin <= integral + 1e-9
        assert integral - cmin < 1.5

    @pytest.mark.parametrize("seed", range(8))
    def test_random_workloads_round_trip(self, seed):
        w = random_workload(seed, n=80, horizon=6.0)
        planner = CapacityPlanner(w, 0.1)
        cmin = planner.min_capacity(0.9)
        frac = decompose(w, cmin, 0.1).fraction_admitted
        assert frac >= 0.9 - 1e-12


class TestCaching:
    def test_evaluations_are_memoized(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05)
        planner.min_capacity(0.9)
        n_after_first = len(planner._cache)
        planner.min_capacity(0.9)
        assert len(planner._cache) == n_after_first

    def test_capacity_curve_shares_cache(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05)
        curve = planner.capacity_curve([0.8, 0.9, 1.0])
        assert set(curve) == {0.8, 0.9, 1.0}
        assert curve[0.8] <= curve[0.9] <= curve[1.0]


class TestPlan:
    def test_default_delta_c(self, bursty_workload):
        plan = CapacityPlanner(bursty_workload, 0.05).plan(0.9)
        assert plan.delta_c == pytest.approx(1.0 / 0.05)
        assert plan.total_capacity == plan.cmin + plan.delta_c
        assert plan.achieved_fraction >= 0.9

    def test_explicit_delta_c(self, bursty_workload):
        plan = CapacityPlanner(bursty_workload, 0.05).plan(0.9, delta_c=5.0)
        assert plan.delta_c == 5.0

    def test_plan_fields(self, bursty_workload):
        plan = CapacityPlanner(bursty_workload, 0.05).plan(0.95)
        assert isinstance(plan, CapacityPlan)
        assert plan.workload_name == "bursty"
        assert plan.fraction == 0.95
        assert plan.delta == 0.05


class TestConvenienceWrapper:
    def test_min_capacity_function(self, uniform_workload):
        direct = min_capacity(uniform_workload, 0.1, 0.9)
        via_planner = CapacityPlanner(uniform_workload, 0.1).min_capacity(0.9)
        assert direct == via_planner


class TestKneeShape:
    def test_bursty_workload_has_knee(self, bursty_workload):
        """The paper's core observation: guaranteeing the last few percent
        of a bursty workload costs a disproportionate amount of capacity."""
        planner = CapacityPlanner(bursty_workload, 0.02)
        curve = planner.capacity_curve([0.7, 1.0])
        assert curve[1.0] / curve[0.7] > 2.0

    def test_smooth_workload_has_no_knee(self):
        w = Workload(np.arange(2000) * 0.005)  # perfectly paced, 200 IOPS
        planner = CapacityPlanner(w, 0.05)
        curve = planner.capacity_curve([0.9, 1.0])
        assert curve[1.0] / curve[0.9] < 1.3
