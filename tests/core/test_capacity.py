"""Tests for the capacity planner (binary search for Cmin)."""

import numpy as np
import pytest

from repro.core.capacity import CapacityPlan, CapacityPlanner, min_capacity
from repro.core.rtt import decompose
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError

from ..conftest import random_workload


class TestMinCapacity:
    def test_minimality_and_sufficiency(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05)
        for fraction in (0.8, 0.9, 0.95, 1.0):
            cmin = planner.min_capacity(fraction)
            required = planner._required_count(fraction)
            assert planner.admitted_at(cmin) >= required
            assert planner.admitted_at(cmin - 1) < required

    def test_monotone_in_fraction(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05)
        caps = [planner.min_capacity(f) for f in (0.5, 0.8, 0.9, 0.99, 1.0)]
        assert caps == sorted(caps)

    def test_monotone_in_delta(self, bursty_workload):
        caps = [
            CapacityPlanner(bursty_workload, d).min_capacity(0.9)
            for d in (0.01, 0.02, 0.05, 0.1)
        ]
        assert caps == sorted(caps, reverse=True)

    def test_full_fraction_admits_everything(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.02)
        cmin = planner.min_capacity(1.0)
        result = decompose(bursty_workload, cmin, 0.02)
        assert result.n_admitted == len(bursty_workload)

    def test_empty_workload(self, empty_workload):
        planner = CapacityPlanner(empty_workload, 0.1)
        assert planner.min_capacity(1.0) == 1.0

    def test_single_request(self, single_request):
        planner = CapacityPlanner(single_request, 0.1)
        # One request in 100 ms -> 10 IOPS suffices and is minimal.
        assert planner.min_capacity(1.0) == 10.0

    def test_invalid_fraction(self, uniform_workload):
        planner = CapacityPlanner(uniform_workload, 0.1)
        with pytest.raises(ConfigurationError):
            planner.min_capacity(0.0)
        with pytest.raises(ConfigurationError):
            planner.min_capacity(1.5)

    def test_invalid_delta(self, uniform_workload):
        with pytest.raises(ConfigurationError):
            CapacityPlanner(uniform_workload, 0.0)

    def test_real_valued_search(self, uniform_workload):
        planner = CapacityPlanner(
            uniform_workload, 0.05, integral=False, tolerance=0.01
        )
        cmin = planner.min_capacity(0.9)
        integral = CapacityPlanner(uniform_workload, 0.05).min_capacity(0.9)
        assert cmin <= integral + 1e-9
        assert integral - cmin < 1.5

    @pytest.mark.parametrize("seed", range(8))
    def test_random_workloads_round_trip(self, seed):
        w = random_workload(seed, n=80, horizon=6.0)
        planner = CapacityPlanner(w, 0.1)
        cmin = planner.min_capacity(0.9)
        frac = decompose(w, cmin, 0.1).fraction_admitted
        assert frac >= 0.9 - 1e-12


class TestCaching:
    def test_evaluations_are_memoized(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05)
        planner.min_capacity(0.9)
        n_after_first = len(planner._cache)
        planner.min_capacity(0.9)
        assert len(planner._cache) == n_after_first

    def test_capacity_curve_shares_cache(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05)
        curve = planner.capacity_curve([0.8, 0.9, 1.0])
        assert set(curve) == {0.8, 0.9, 1.0}
        assert curve[0.8] <= curve[0.9] <= curve[1.0]

    def test_batched_representation_stays_arrays(self, bursty_workload):
        # The kernel backends consume the planner's arrays zero-copy.
        planner = CapacityPlanner(bursty_workload, 0.05)
        assert isinstance(planner._instants, np.ndarray)
        assert isinstance(planner._counts, np.ndarray)
        assert planner._instants.dtype == np.float64
        assert planner._counts.dtype == np.int64


class TestWarmStart:
    """Cached evaluations double as bisection brackets; none of the
    shortcuts may change any answer."""

    def test_warm_searches_match_cold(self, bursty_workload):
        warm = CapacityPlanner(bursty_workload, 0.05)
        fractions = (1.0, 0.99, 0.95, 0.9, 0.8, 0.5)
        warm_caps = [warm.min_capacity(f) for f in fractions]
        cold_caps = [
            CapacityPlanner(bursty_workload, 0.05).min_capacity(f)
            for f in fractions
        ]
        assert warm_caps == cold_caps

    def test_warm_start_reduces_evaluations(self, bursty_workload):
        warm = CapacityPlanner(bursty_workload, 0.05)
        warm.min_capacity(1.0)
        before = len(warm._cache)
        warm.min_capacity(0.95)
        warm_evals = len(warm._cache) - before
        cold = CapacityPlanner(bursty_workload, 0.05)
        cold.min_capacity(0.95)
        assert warm_evals < len(cold._cache)

    def test_prefill_matches_direct_evaluation(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05)
        grid = [3.0, 17.0, 40.5, 96.0, 200.0]
        planner.prefill(grid)
        fresh = CapacityPlanner(bursty_workload, 0.05)
        for capacity in grid:
            assert planner._cache[capacity] == fresh.admitted_at(capacity)

    def test_prefill_does_not_change_min_capacity(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05)
        planner.prefill(np.geomspace(1.0, 500.0, 20).tolist())
        fresh = CapacityPlanner(bursty_workload, 0.05)
        for fraction in (0.8, 0.9, 0.95, 1.0):
            assert planner.min_capacity(fraction) == fresh.min_capacity(fraction)

    def test_prefill_ignores_nonpositive_and_duplicates(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05)
        planner.prefill([10.0, 10.0, -5.0, 0.0])
        assert set(planner._cache) == {10.0}

    def test_minimality_after_curve(self, bursty_workload):
        # capacity_curve prefills a grid; minimality must survive it.
        planner = CapacityPlanner(bursty_workload, 0.05)
        curve = planner.capacity_curve([0.8, 0.9, 0.95, 1.0])
        for fraction, cmin in curve.items():
            required = planner._required_count(fraction)
            assert planner.admitted_at(cmin) >= required
            assert planner.admitted_at(cmin - 1) < required

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_random_workloads_warm_vs_cold(self, seed):
        workload = random_workload(seed, n=60, horizon=4.0)
        warm = CapacityPlanner(workload, 0.1)
        for fraction in (1.0, 0.9, 0.75):
            cold = CapacityPlanner(workload, 0.1)
            assert warm.min_capacity(fraction) == cold.min_capacity(fraction)


class TestPlan:
    def test_default_delta_c(self, bursty_workload):
        plan = CapacityPlanner(bursty_workload, 0.05).plan(0.9)
        assert plan.delta_c == pytest.approx(1.0 / 0.05)
        assert plan.total_capacity == plan.cmin + plan.delta_c
        assert plan.achieved_fraction >= 0.9

    def test_explicit_delta_c(self, bursty_workload):
        plan = CapacityPlanner(bursty_workload, 0.05).plan(0.9, delta_c=5.0)
        assert plan.delta_c == 5.0

    def test_plan_fields(self, bursty_workload):
        plan = CapacityPlanner(bursty_workload, 0.05).plan(0.95)
        assert isinstance(plan, CapacityPlan)
        assert plan.workload_name == "bursty"
        assert plan.fraction == 0.95
        assert plan.delta == 0.05


class TestConvenienceWrapper:
    def test_min_capacity_function(self, uniform_workload):
        direct = min_capacity(uniform_workload, 0.1, 0.9)
        via_planner = CapacityPlanner(uniform_workload, 0.1).min_capacity(0.9)
        assert direct == via_planner


class TestKneeShape:
    def test_bursty_workload_has_knee(self, bursty_workload):
        """The paper's core observation: guaranteeing the last few percent
        of a bursty workload costs a disproportionate amount of capacity."""
        planner = CapacityPlanner(bursty_workload, 0.02)
        curve = planner.capacity_curve([0.7, 1.0])
        assert curve[1.0] / curve[0.7] > 2.0

    def test_smooth_workload_has_no_knee(self):
        w = Workload(np.arange(2000) * 0.005)  # perfectly paced, 200 IOPS
        planner = CapacityPlanner(w, 0.05)
        curve = planner.capacity_curve([0.9, 1.0])
        assert curve[1.0] / curve[0.9] < 1.3


class TestDeviceDepthCorrection:
    """``device_depth`` plans against ``δ_eff(C) = δ − k·E[S]/C`` — the
    deadline budget left after the driver's in-flight window."""

    def test_validation(self, bursty_workload):
        with pytest.raises(ConfigurationError, match="device_depth"):
            CapacityPlanner(bursty_workload, 0.05, device_depth=0)
        with pytest.raises(ConfigurationError, match="mean_demand"):
            CapacityPlanner(bursty_workload, 0.05, mean_demand=0.0)

    def test_effective_delta_without_depth_is_delta(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05)
        assert planner.effective_delta(10.0) == 0.05
        assert planner.effective_delta(1e6) == 0.05

    def test_effective_delta_monotone_in_capacity(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05, device_depth=4)
        deltas = [planner.effective_delta(c) for c in (50.0, 100.0, 200.0, 1e6)]
        assert deltas == sorted(deltas)
        assert deltas[-1] == pytest.approx(0.05, rel=1e-3)
        assert all(0.0 <= d <= 0.05 for d in deltas)

    def test_budget_eaten_entirely_admits_nothing(self, bursty_workload):
        planner = CapacityPlanner(bursty_workload, 0.05, device_depth=4)
        # 4 unit-demand residents at 10 IOPS need 0.4 s >> 0.05 budget.
        assert planner.effective_delta(10.0) == 0.0
        assert planner.admitted_at(10.0) == 0

    def test_deeper_queue_needs_more_capacity(self, bursty_workload):
        plain = CapacityPlanner(bursty_workload, 0.05).min_capacity(0.9)
        caps = [
            CapacityPlanner(bursty_workload, 0.05, device_depth=k).min_capacity(0.9)
            for k in (1, 4, 16)
        ]
        assert caps == sorted(caps)
        assert caps[0] >= plain

    def test_admitted_never_exceeds_uncorrected(self, bursty_workload):
        plain = CapacityPlanner(bursty_workload, 0.05)
        depth = CapacityPlanner(bursty_workload, 0.05, device_depth=8)
        for capacity in (40.0, 80.0, 160.0, 320.0):
            assert depth.admitted_at(capacity) <= plain.admitted_at(capacity)

    def test_prefill_agrees_with_direct_evaluation(self, bursty_workload):
        """The per-capacity prefill loop (the kernel sweep can't vary
        δ_eff) must land exactly the direct results in the cache."""
        a = CapacityPlanner(bursty_workload, 0.05, device_depth=4)
        b = CapacityPlanner(bursty_workload, 0.05, device_depth=4)
        grid = [40.0, 60.0, 90.0, 130.0]
        a.prefill(grid)
        assert {c: a._cache[c] for c in grid} == {
            c: b.admitted_at(c) for c in grid
        }

    def test_prefill_does_not_change_min_capacity(self, bursty_workload):
        warm = CapacityPlanner(bursty_workload, 0.05, device_depth=4)
        warm.prefill(np.linspace(10.0, 400.0, 40).tolist())
        cold = CapacityPlanner(bursty_workload, 0.05, device_depth=4)
        for fraction in (0.8, 0.95, 1.0):
            assert warm.min_capacity(fraction) == cold.min_capacity(fraction)

    def test_mean_demand_defaults_to_workload_mean(self):
        wl = Workload([0.0, 1.0, 2.0], sizes=[2.0, 4.0, 6.0], name="sized")
        planner = CapacityPlanner(wl, 0.5, device_depth=2)
        assert planner.mean_demand == pytest.approx(4.0)
        # δ_eff(C) = 0.5 − 2·4/C
        assert planner.effective_delta(32.0) == pytest.approx(0.25)
