"""Tests for the Miser slack tracker."""

import numpy as np
import pytest

from repro.core.slack import (
    SlackTracker,
    initial_slack,
    is_unconstrained,
    no_constraint,
)
from repro.exceptions import SchedulerError


class TestBasics:
    def test_empty_is_unconstrained(self):
        tracker = SlackTracker()
        assert is_unconstrained(tracker.min_slack())
        assert len(tracker) == 0

    def test_insert_and_min(self):
        tracker = SlackTracker()
        tracker.insert(1, 5)
        tracker.insert(2, 3)
        tracker.insert(3, 7)
        assert tracker.min_slack() == 3
        assert len(tracker) == 3

    def test_slack_of(self):
        tracker = SlackTracker()
        tracker.insert(1, 5)
        assert tracker.slack_of(1) == 5

    def test_contains(self):
        tracker = SlackTracker()
        tracker.insert(1, 5)
        assert 1 in tracker
        assert 2 not in tracker

    def test_duplicate_key_rejected(self):
        tracker = SlackTracker()
        tracker.insert(1, 5)
        with pytest.raises(SchedulerError, match="already"):
            tracker.insert(1, 6)

    def test_remove(self):
        tracker = SlackTracker()
        tracker.insert(1, 3)
        tracker.insert(2, 5)
        tracker.remove(1)
        assert tracker.min_slack() == 5
        assert 1 not in tracker

    def test_remove_unknown(self):
        tracker = SlackTracker()
        with pytest.raises(SchedulerError, match="not tracked"):
            tracker.remove(99)

    def test_slack_of_unknown(self):
        tracker = SlackTracker()
        with pytest.raises(SchedulerError, match="not tracked"):
            tracker.slack_of(99)


class TestDecrementAll:
    def test_decrements_every_entry(self):
        tracker = SlackTracker()
        tracker.insert(1, 5)
        tracker.insert(2, 3)
        tracker.decrement_all()
        assert tracker.slack_of(1) == 4
        assert tracker.slack_of(2) == 2
        assert tracker.min_slack() == 2

    def test_insert_after_decrement_unaffected(self):
        tracker = SlackTracker()
        tracker.insert(1, 5)
        tracker.decrement_all()
        tracker.decrement_all()
        tracker.insert(2, 5)
        assert tracker.slack_of(1) == 3
        assert tracker.slack_of(2) == 5
        assert tracker.min_slack() == 3

    def test_decrement_empty_is_safe(self):
        tracker = SlackTracker()
        tracker.decrement_all()
        tracker.insert(1, 2)
        assert tracker.slack_of(1) == 2

    def test_slack_can_go_negative(self):
        tracker = SlackTracker()
        tracker.insert(1, 1)
        tracker.decrement_all()
        tracker.decrement_all()
        assert tracker.slack_of(1) == -1
        assert tracker.min_slack() == -1


class TestAgainstNaiveModel:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_operation_sequences(self, seed):
        """The lazy-offset tracker must match a dict-based naive model
        under arbitrary interleavings of its operations."""
        gen = np.random.default_rng(seed)
        tracker = SlackTracker()
        naive: dict[int, int] = {}
        next_key = 0
        for _ in range(400):
            op = gen.integers(0, 4)
            if op == 0 or not naive:  # insert
                slack = int(gen.integers(0, 12))
                tracker.insert(next_key, slack)
                naive[next_key] = slack
                next_key += 1
            elif op == 1:  # remove random
                key = int(gen.choice(list(naive)))
                tracker.remove(key)
                del naive[key]
            elif op == 2:  # decrement all
                tracker.decrement_all()
                naive = {k: v - 1 for k, v in naive.items()}
            else:  # query min
                expected = min(naive.values()) if naive else no_constraint()
                assert tracker.min_slack() == expected
        for key, slack in naive.items():
            assert tracker.slack_of(key) == slack


class TestInitialSlack:
    def test_matches_algorithm2(self):
        # maxQ1 = 6, lenQ1 (post-increment) = 1 -> slack 5.
        assert initial_slack(6.0, 1) == 5

    def test_fractional_max_queue_floors(self):
        assert initial_slack(5.95, 1) == 4

    def test_full_queue_zero_slack(self):
        assert initial_slack(6.0, 6) == 0

    def test_never_negative(self):
        assert initial_slack(2.0, 5) == 0
