"""Shared fixtures for the test suite.

Workload fixtures are small (tens to thousands of requests) so the whole
suite stays fast; the full-scale reproduction runs live in benchmarks/.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.workload import Workload

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    pass
else:
    # ``ci``: fully deterministic — derandomized example generation and
    # no wall-clock deadline, so a red run always reproduces and slow CI
    # machines never flake.  ``dev``: exploratory — random seeds and a
    # bigger example budget to actually hunt for new counterexamples.
    # Select with HYPOTHESIS_PROFILE; the deterministic profile is the
    # default everywhere so tier-1 results are reproducible.
    settings.register_profile(
        "ci", derandomize=True, max_examples=100, deadline=None
    )
    settings.register_profile(
        "dev", derandomize=False, max_examples=300, deadline=None
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def empty_workload():
    return Workload([], name="empty")


@pytest.fixture
def single_request():
    return Workload([1.0], name="single")


@pytest.fixture
def toy_workload():
    """The paper's Figure 3 example: batches of 2, 2, 1 at t = 1, 2, 3."""
    return Workload.from_counts([1.0, 2.0, 3.0], [2, 2, 1], name="figure3")


@pytest.fixture
def uniform_workload(rng):
    """100 requests uniformly over 10 seconds."""
    return Workload(np.sort(rng.uniform(0.0, 10.0, 100)), name="uniform")


@pytest.fixture
def bursty_workload(rng):
    """A Poisson floor with one dense burst in the middle."""
    floor = rng.uniform(0.0, 20.0, 400)
    burst = 8.0 + rng.uniform(0.0, 0.4, 300)
    return Workload(np.sort(np.concatenate([floor, burst])), name="bursty")


def random_workload(seed: int, n: int = 30, horizon: float = 5.0) -> Workload:
    """Deterministic random workload for parametrized tests."""
    gen = np.random.default_rng(seed)
    return Workload(np.sort(np.round(gen.uniform(0.0, horizon, n), 4)))
