"""Integration tests for the shaping facade (run_policy, WorkloadShaper)."""

import numpy as np
import pytest

from repro.core.capacity import CapacityPlanner
from repro.exceptions import ConfigurationError
from repro.shaping import PolicyRunResult, WorkloadShaper, run_policy

POLICIES = ("fcfs", "split", "fairqueue", "wf2q", "miser")


@pytest.fixture(scope="module")
def workload():
    gen = np.random.default_rng(3)
    floor = gen.uniform(0.0, 20.0, 500)
    burst = 9.0 + gen.uniform(0.0, 0.4, 250)
    from repro.core.workload import Workload

    return Workload(np.sort(np.concatenate([floor, burst])), name="itest")


@pytest.fixture(scope="module")
def plan(workload):
    return CapacityPlanner(workload, 0.1).plan(0.9)


class TestRunPolicy:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_request_served_once(self, workload, plan, policy):
        result = run_policy(workload, policy, plan.cmin, plan.delta_c, plan.delta)
        assert len(result.overall) == len(workload)

    @pytest.mark.parametrize("policy", ("split", "fairqueue", "wf2q", "miser"))
    def test_shaped_policies_hit_target(self, workload, plan, policy):
        """Decomposition-based policies achieve ~90% within delta while
        FCFS at the same capacity falls short (the paper's Figure 6)."""
        result = run_policy(workload, policy, plan.cmin, plan.delta_c, plan.delta)
        assert result.fraction_within() >= 0.86

    def test_fcfs_below_target(self, workload, plan):
        fcfs = run_policy(workload, "fcfs", plan.cmin, plan.delta_c, plan.delta)
        shaped = run_policy(workload, "split", plan.cmin, plan.delta_c, plan.delta)
        assert fcfs.fraction_within() < shaped.fraction_within()

    @pytest.mark.parametrize("policy", ("split", "fairqueue", "wf2q", "miser"))
    def test_classification_counts(self, workload, plan, policy):
        result = run_policy(workload, policy, plan.cmin, plan.delta_c, plan.delta)
        assert len(result.primary) + len(result.overflow) == len(workload)
        # The online classifier admits roughly the planned fraction.
        assert len(result.primary) / len(workload) >= 0.85

    def test_split_primary_never_misses(self, workload, plan):
        result = run_policy(workload, "split", plan.cmin, plan.delta_c, plan.delta)
        assert result.primary_misses == 0

    def test_fcfs_has_no_classes(self, workload, plan):
        result = run_policy(workload, "fcfs", plan.cmin, plan.delta_c, plan.delta)
        assert len(result.primary) == 0
        assert len(result.overflow) == 0

    def test_binned_fractions(self, workload, plan):
        result = run_policy(workload, "miser", plan.cmin, plan.delta_c, plan.delta)
        bins = result.binned_fractions([0.05, 0.1, 0.5, 1.0])
        values = list(bins.values())
        assert values[:-1] == sorted(values[:-1])  # cumulative
        assert values[-1] == pytest.approx(1.0 - values[-2], abs=1e-9)

    def test_rate_recording(self, workload, plan):
        result = run_policy(
            workload, "miser", plan.cmin, plan.delta_c, plan.delta, record_rates=1.0
        )
        starts, rates = result.completion_series
        assert rates.sum() * 1.0 == pytest.approx(len(workload))

    def test_rate_recording_rejected_for_split(self, workload, plan):
        with pytest.raises(ConfigurationError, match="single-server"):
            run_policy(
                workload, "split", plan.cmin, plan.delta_c, plan.delta,
                record_rates=1.0,
            )

    def test_unknown_policy(self, workload, plan):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            run_policy(workload, "lifo", plan.cmin, plan.delta_c, plan.delta)

    def test_bad_configuration(self, workload):
        with pytest.raises(ConfigurationError):
            run_policy(workload, "fcfs", 0.0, 1.0, 0.1)

    def test_total_capacity(self, workload, plan):
        result = run_policy(workload, "fcfs", plan.cmin, plan.delta_c, plan.delta)
        assert result.total_capacity == plan.cmin + plan.delta_c


class TestWorkloadShaper:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadShaper(delta=0.0, fraction=0.9)
        with pytest.raises(ConfigurationError):
            WorkloadShaper(delta=0.1, fraction=0.0)

    def test_default_delta_c(self):
        shaper = WorkloadShaper(delta=0.01, fraction=0.9)
        assert shaper.delta_c == pytest.approx(100.0)

    def test_plan_matches_planner(self, workload):
        shaper = WorkloadShaper(delta=0.1, fraction=0.9)
        plan = shaper.plan(workload)
        assert plan.cmin == CapacityPlanner(workload, 0.1).min_capacity(0.9)

    def test_decompose_uses_planned_capacity(self, workload):
        shaper = WorkloadShaper(delta=0.1, fraction=0.9)
        decomposition = shaper.decompose(workload)
        assert decomposition.fraction_admitted >= 0.9

    def test_shape_end_to_end(self, workload):
        shaper = WorkloadShaper(delta=0.1, fraction=0.9)
        outcome = shaper.shape(workload, policies=("miser", "fcfs"))
        assert isinstance(outcome.run("miser"), PolicyRunResult)
        assert outcome.decomposition.fraction_admitted >= 0.9
        with pytest.raises(ConfigurationError, match="not simulated"):
            outcome.run("split")


class TestPlannerCache:
    def test_planner_memoized_for_live_workload(self, workload):
        shaper = WorkloadShaper(delta=0.1, fraction=0.9)
        assert shaper.planner(workload) is shaper.planner(workload)

    def test_cache_does_not_grow_across_many_workloads(self):
        import gc

        from repro.core.workload import Workload
        from repro.shaping import PLANNER_CACHE_SIZE

        shaper = WorkloadShaper(delta=0.1, fraction=0.9)
        for i in range(10 * PLANNER_CACHE_SIZE):
            workload = Workload([0.1, 0.2 + i * 1e-6], name=f"w{i}")
            shaper.planner(workload)
        gc.collect()
        # The shaper itself pins at most PLANNER_CACHE_SIZE planners;
        # with no outside references the weak cache shrinks to the LRU.
        assert len(shaper._planner_lru) == PLANNER_CACHE_SIZE
        assert len(shaper._planners) <= PLANNER_CACHE_SIZE

    def test_recent_planners_stay_cached_without_external_refs(self):
        import gc

        from repro.core.workload import Workload

        shaper = WorkloadShaper(delta=0.1, fraction=0.9)
        workload = Workload([0.1, 0.2], name="pinned")
        first = shaper.planner(workload)
        gc.collect()
        # Still in the LRU keepalive: same object comes back.
        assert shaper.planner(workload) is first


class TestRunTelemetry:
    def test_disabled_by_default(self, workload, plan):
        result = run_policy(workload, "miser", plan.cmin, plan.delta_c, 0.1)
        assert result.telemetry is None

    def test_metrics_and_samples_attached(self, workload, plan):
        from repro.obs import MetricsRegistry, depth_reconciles

        registry = MetricsRegistry()
        result = run_policy(
            workload,
            "miser",
            plan.cmin,
            plan.delta_c,
            0.1,
            metrics=registry,
            sample_interval=1.0,
        )
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.registry is registry
        assert telemetry.meta["policy"] == "miser"
        assert telemetry.meta["requests"] == len(workload)
        assert depth_reconciles(telemetry.samples)
        assert registry.value("driver.completions") == len(workload)
