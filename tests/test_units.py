"""Tests for unit helpers and the exception hierarchy."""

import pytest

from repro import exceptions, units


class TestUnits:
    def test_ms(self):
        assert units.ms(10) == pytest.approx(0.010)

    def test_us(self):
        assert units.us(250) == pytest.approx(0.00025)

    def test_to_ms_roundtrip(self):
        assert units.to_ms(units.ms(42.5)) == pytest.approx(42.5)

    def test_iops_identity(self):
        assert units.iops(100) == 100.0
        assert isinstance(units.iops(100), float)

    def test_service_time(self):
        assert units.service_time(100.0) == pytest.approx(0.01)

    def test_service_time_invalid(self):
        with pytest.raises(ValueError):
            units.service_time(0.0)

    def test_constants(self):
        assert units.MILLISECOND == 1e-3
        assert units.MICROSECOND == 1e-6
        assert 0 < units.TIME_EPSILON < units.MICROSECOND


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            exceptions.WorkloadError,
            exceptions.TraceFormatError,
            exceptions.CapacityError,
            exceptions.SchedulerError,
            exceptions.SimulationError,
            exceptions.AdmissionError,
            exceptions.ConfigurationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, exceptions.ReproError)

    def test_trace_format_error_line_number(self):
        err = exceptions.TraceFormatError("bad field", line_number=12)
        assert "line 12" in str(err)
        assert err.line_number == 12

    def test_trace_format_error_without_line(self):
        err = exceptions.TraceFormatError("bad field")
        assert str(err) == "bad field"
        assert err.line_number is None

    def test_catchable_as_repro_error(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.CapacityError("no bracket")
