"""Adaptive shaper: hysteresis, actuation, and restoration."""

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import AdaptiveShaper, ControllerConfig
from repro.obs.registry import MetricsRegistry
from repro.sched.registry import make_scheduler
from repro.server.constant_rate import constant_rate_server
from repro.server.driver import DeviceDriver
from repro.sim.engine import Simulator

CMIN, DELTA_C, DELTA = 10.0, 2.0, 0.5


def _shaper(config=None, metrics=None):
    sim = Simulator()
    scheduler = make_scheduler("miser", CMIN, DELTA_C, DELTA)
    driver = DeviceDriver(
        sim, constant_rate_server(sim, CMIN + DELTA_C), scheduler
    )
    shaper = AdaptiveShaper(driver, config=config, metrics=metrics)
    return driver, shaper


def _feed(driver, completed=0, missed=0):
    """Advance the driver's always-on tallies as if requests finished."""
    driver.q1_completed += completed
    driver.q1_missed += missed


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(enter_miss_rate=0.0)
        with pytest.raises(ConfigurationError, match="hysteresis"):
            ControllerConfig(enter_miss_rate=0.1, exit_miss_rate=0.1)
        with pytest.raises(ConfigurationError):
            ControllerConfig(trip_ticks=0)
        with pytest.raises(ConfigurationError):
            ControllerConfig(shrink=1.0)
        with pytest.raises(ConfigurationError):
            ControllerConfig(min_limit=-1)
        with pytest.raises(ConfigurationError):
            ControllerConfig(shed_backlog=-1)

    def test_fcfs_rejected(self):
        sim = Simulator()
        driver = DeviceDriver(
            sim,
            constant_rate_server(sim, CMIN),
            make_scheduler("fcfs", CMIN, DELTA_C, DELTA),
        )
        with pytest.raises(ConfigurationError, match="classifier"):
            AdaptiveShaper(driver)


class TestHysteresis:
    def test_single_bad_window_does_not_trip(self):
        driver, shaper = _shaper(ControllerConfig(trip_ticks=2))
        planned = shaper.planned_limit
        _feed(driver, completed=10, missed=5)
        shaper.tick()
        assert shaper.classifier.limit == planned
        assert not shaper.degraded

    def test_consecutive_bad_windows_trip(self):
        driver, shaper = _shaper(ControllerConfig(trip_ticks=2, shrink=0.5))
        planned = shaper.planned_limit
        for _ in range(2):
            _feed(driver, completed=10, missed=5)
            shaper.tick()
        assert shaper.degraded
        assert shaper.degrades == 1
        assert shaper.classifier.limit == max(1, int(planned * 0.5))

    def test_interrupted_streak_resets(self):
        driver, shaper = _shaper(ControllerConfig(trip_ticks=2))
        _feed(driver, completed=10, missed=5)
        shaper.tick()
        _feed(driver, completed=10, missed=0)  # clean window in between
        shaper.tick()
        _feed(driver, completed=10, missed=5)
        shaper.tick()
        assert not shaper.degraded

    def test_dead_band_holds_mode(self):
        config = ControllerConfig(
            enter_miss_rate=0.2, exit_miss_rate=0.02, trip_ticks=1, clear_ticks=1
        )
        driver, shaper = _shaper(config)
        _feed(driver, completed=10, missed=5)
        shaper.tick()
        assert shaper.degraded
        # 10% miss rate: between exit (2%) and enter (20%) — no change.
        _feed(driver, completed=10, missed=1)
        shaper.tick()
        assert shaper.degraded
        assert shaper.recoveries == 0

    def test_recovery_restores_planned_limit(self):
        config = ControllerConfig(trip_ticks=1, clear_ticks=3)
        driver, shaper = _shaper(config)
        planned = shaper.planned_limit
        _feed(driver, completed=10, missed=5)
        shaper.tick()
        assert shaper.classifier.limit < planned
        for i in range(3):
            _feed(driver, completed=10, missed=0)
            shaper.tick()
            if i < 2:
                assert shaper.classifier.limit < planned
        assert shaper.classifier.limit == planned
        assert not shaper.degraded
        assert shaper.recoveries == 1

    def test_geometric_shrink_floors_at_min_limit(self):
        config = ControllerConfig(trip_ticks=1, shrink=0.5, min_limit=1)
        driver, shaper = _shaper(config)
        for _ in range(20):
            _feed(driver, completed=10, missed=10)
            shaper.tick()
        assert shaper.classifier.limit == 1
        # No-op degrades (already at the floor) are not counted.
        assert shaper.degrades < 20

    def test_crash_detected_without_completions(self):
        """Backlog plus zero completions reads as a fully missed window."""
        driver, shaper = _shaper(ControllerConfig(trip_ticks=1))
        from repro.core.request import Request

        driver.scheduler.on_arrival(Request(arrival=0.0))
        driver.scheduler.on_arrival(Request(arrival=0.0))
        shaper.tick()
        assert shaper.degraded

    def test_idle_is_healthy(self):
        driver, shaper = _shaper(ControllerConfig(trip_ticks=1))
        shaper.tick()
        assert not shaper.degraded


class TestActuation:
    def test_shed_backlog(self):
        config = ControllerConfig(trip_ticks=1, shed_backlog=0)
        driver, shaper = _shaper(config)
        from repro.core.request import QoSClass, Request

        overflow = Request(arrival=0.0)
        overflow.classify(QoSClass.OVERFLOW)
        driver.scheduler.on_requeue(overflow)
        _feed(driver, completed=10, missed=5)
        shaper.tick()
        assert driver.shed == [overflow]
        assert driver.fault_ledger()["shed"] == 1

    def test_metrics_emitted(self):
        registry = MetricsRegistry()
        driver, shaper = _shaper(
            ControllerConfig(trip_ticks=1, clear_ticks=1), metrics=registry
        )
        _feed(driver, completed=10, missed=5)
        shaper.tick()
        _feed(driver, completed=10, missed=0)
        shaper.tick()
        assert registry.value("faults.ctl.degrades") == 1
        assert registry.value("faults.ctl.recoveries") == 1
        assert registry.value("faults.ctl.limit") == shaper.planned_limit
