"""Timeout-and-retry driver path: demotion, backoff, budget, ledgers."""

import pytest

from repro.core.request import QoSClass, Request
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.faults import FaultableServer, RetryPolicy
from repro.sched.registry import make_scheduler
from repro.server.constant_rate import ConstantRateModel
from repro.server.driver import DeviceDriver
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_q1=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)

    def test_timeout_per_class(self):
        policy = RetryPolicy(timeout_q1=1.0, timeout_q2=4.0)
        primary = Request(arrival=0.0)
        primary.classify(QoSClass.PRIMARY, delta=0.2)
        overflow = Request(arrival=0.0)
        overflow.classify(QoSClass.OVERFLOW)
        unclassified = Request(arrival=0.0)
        assert policy.timeout_for(primary) == 1.0
        assert policy.timeout_for(overflow) == 4.0
        assert policy.timeout_for(unclassified) == 4.0

    def test_backoff_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff_delay(1) == pytest.approx(0.1)
        assert policy.backoff_delay(2) == pytest.approx(0.2)
        assert policy.backoff_delay(3) == pytest.approx(0.4)
        with pytest.raises(ConfigurationError):
            policy.backoff_delay(0)

    def test_none_disables(self):
        policy = RetryPolicy()
        assert policy.timeout_for(Request(arrival=0.0)) is None


def _stack(policy="miser", rate=10.0, retry=None, inflight="requeue"):
    sim = Simulator()
    scheduler = make_scheduler(policy, 8.0, 2.0, 0.5)
    server = FaultableServer(
        sim, ConstantRateModel(rate), name="srv", inflight=inflight
    )
    driver = DeviceDriver(sim, server, scheduler, retry=retry)
    return sim, server, driver


class TestDriverTimeouts:
    def test_timeout_aborts_and_retries(self):
        """A served-too-slowly request is aborted, demoted, retried, and
        completes on the second attempt."""
        sim, server, driver = _stack(
            rate=0.5,  # 2 s service vs 1 s Q1 timeout
            retry=RetryPolicy(timeout_q1=1.0, timeout_q2=None),
        )
        request = Request(arrival=0.0)
        sim.schedule(0.0, lambda: driver.on_arrival(request))
        # Speed the server back up after the first attempt times out so
        # the retry (now Q2, no timeout) can finish.
        sim.schedule(1.5, lambda: setattr(server.model, "rate", 10.0))
        sim.run()
        assert driver.completed == [request]
        assert request.retries == 1
        assert request.qos_class is QoSClass.OVERFLOW  # demoted
        assert driver.demotions == 1
        assert server.aborts == 1

    def test_completion_disarms_timeout(self):
        """A request finishing before its timeout is never retried."""
        sim, server, driver = _stack(
            rate=10.0, retry=RetryPolicy(timeout_q1=1.0, timeout_q2=1.0)
        )
        request = Request(arrival=0.0)
        sim.schedule(0.0, lambda: driver.on_arrival(request))
        sim.run()
        assert driver.completed == [request]
        assert request.retries == 0
        assert server.aborts == 0

    def test_budget_exhaustion_drops(self):
        """A permanently slow server burns the whole retry budget, then
        the request lands in the dropped ledger exactly once."""
        sim, server, driver = _stack(
            rate=0.01,  # 100 s service: every attempt times out
            retry=RetryPolicy(
                timeout_q1=0.5, timeout_q2=0.5, max_retries=2, backoff_base=0.1
            ),
        )
        request = Request(arrival=0.0)
        sim.schedule(0.0, lambda: driver.on_arrival(request))
        sim.run(until=100.0)
        assert driver.completed == []
        assert driver.dropped == [request]
        assert request.retries == 3  # initial demotion retry + 2 more
        assert driver.fault_ledger() == {"completed": 0, "dropped": 1, "shed": 0}

    def test_demotion_frees_q1_slot(self):
        """The admission slot released by a demoted request is available
        to a fresh arrival immediately."""
        sim, server, driver = _stack(
            rate=0.5, retry=RetryPolicy(timeout_q1=1.0)
        )
        classifier = driver.classifier
        first = Request(arrival=0.0)
        sim.schedule(0.0, lambda: driver.on_arrival(first))
        occupancy = []
        sim.schedule(1.5, lambda: occupancy.append(classifier.len_q1))
        sim.schedule(1.5, lambda: setattr(server.model, "rate", 10.0))
        sim.run()
        # After the timeout fired (t=1.0) the demoted request no longer
        # holds a Q1 slot.
        assert occupancy == [0]

    def test_no_retry_means_no_timeouts(self):
        """retry=None arms nothing: not even the timeout dict is used."""
        sim, server, driver = _stack(rate=0.5, retry=None)
        request = Request(arrival=0.0)
        sim.schedule(0.0, lambda: driver.on_arrival(request))
        sim.run()
        assert driver.completed == [request]
        assert driver._timeouts == {}
        assert request.retries == 0


class TestCrashIntegration:
    def test_crash_requeue_completes_after_recovery(self):
        sim, server, driver = _stack(rate=1.0, retry=RetryPolicy())
        request = Request(arrival=0.0)
        sim.schedule(0.0, lambda: driver.on_arrival(request))
        sim.schedule(0.5, server.crash)
        sim.schedule(2.0, server.recover)
        sim.run()
        assert driver.completed == [request]
        assert request.retries == 1
        assert request.qos_class is QoSClass.OVERFLOW
        # Completed strictly after the repair.
        assert request.completion > 2.0

    def test_crash_drop_lands_in_ledger(self):
        sim, server, driver = _stack(
            rate=1.0, retry=RetryPolicy(), inflight="drop"
        )
        request = Request(arrival=0.0)
        sim.schedule(0.0, lambda: driver.on_arrival(request))
        sim.schedule(0.5, server.crash)
        sim.schedule(2.0, server.recover)
        sim.run()
        assert driver.completed == []
        assert driver.dropped == [request]
        assert driver.classifier.len_q1 == 0  # slot released on loss

    def test_backlog_drains_on_recovery(self):
        """Arrivals during an outage queue up and all complete after the
        repair, oldest first."""
        sim, server, driver = _stack(rate=10.0, retry=RetryPolicy())
        workload = Workload([0.0, 0.5, 0.6, 0.7, 0.8], name="outage")
        sim.schedule(0.3, server.crash)
        sim.schedule(1.0, server.recover)
        source = WorkloadSource(sim, workload, driver)
        source.start()
        sim.run()
        assert len(driver.completed) == 5
        assert driver.dropped == []


class TestTimeoutTokenKeying:
    """Regression suite for the timeout table's keying scheme.

    The table was once keyed by ``id(request)``: a dropped request could
    be garbage-collected and its id reused by a *new* request, silently
    disarming (or firing) the wrong timeout.  It is now keyed by a
    monotonic per-arm token stored on the request, so aliasing is
    structurally impossible — these tests pin that contract.
    """

    def test_table_keyed_by_token_not_id(self):
        sim, server, driver = _stack(
            rate=0.01, retry=RetryPolicy(timeout_q1=50.0, timeout_q2=50.0)
        )
        request = Request(arrival=0.0)
        sim.schedule(0.0, lambda: driver.on_arrival(request))
        sim.run(until=0.5)
        # Tokens are small monotonic integers from the driver's own
        # sequence — never the interpreter's object id.
        assert request._timeout_token == 1
        assert set(driver._timeouts) == {1}

    def test_each_arm_gets_a_fresh_token(self):
        """Every retry re-arm advances the token; stale tokens are gone
        from the table the moment the old timeout is consumed."""
        sim, server, driver = _stack(
            rate=0.01,
            retry=RetryPolicy(timeout_q1=0.5, timeout_q2=0.5, max_retries=3),
        )
        request = Request(arrival=0.0)
        tokens = []
        sim.schedule(0.0, lambda: driver.on_arrival(request))
        for t in (0.1, 0.7, 1.3, 1.9):
            sim.schedule(t, lambda: tokens.append(request._timeout_token))
        sim.run(until=2.0)
        live = [tok for tok in tokens if tok is not None]
        assert live == sorted(set(live))  # strictly increasing
        assert len(set(live)) > 1  # re-arms really produced new tokens
        # At any instant the table holds exactly the currently armed
        # token, so finishing the run leaves at most one.
        assert set(driver._timeouts) <= {max(live)}

    def test_disarm_is_idempotent_and_stale_safe(self):
        sim, server, driver = _stack(
            rate=0.01, retry=RetryPolicy(timeout_q1=50.0, timeout_q2=50.0)
        )
        request = Request(arrival=0.0)
        sim.schedule(0.0, lambda: driver.on_arrival(request))
        sim.run(until=0.1)
        first = request._timeout_token
        stale_event = driver._timeouts[first]
        driver._disarm_timeout(request)
        assert request._timeout_token is None
        assert driver._timeouts == {}
        driver._disarm_timeout(request)  # second disarm: no-op
        driver._arm_timeout(request)
        assert request._timeout_token > first  # fresh token, not reuse
        # Cancelling the stale event again cannot touch the new arm.
        stale_event.cancel()
        assert set(driver._timeouts) == {request._timeout_token}

    def test_dropped_request_leaves_no_stale_entry(self):
        """Budget exhaustion removes every trace from the table — the
        precondition for id reuse to have been dangerous."""
        sim, server, driver = _stack(
            rate=0.01,
            retry=RetryPolicy(timeout_q1=0.5, timeout_q2=0.5, max_retries=1),
        )
        request = Request(arrival=0.0)
        sim.schedule(0.0, lambda: driver.on_arrival(request))
        sim.run(until=10.0)
        assert driver.dropped == [request]
        assert driver._timeouts == {}
        assert request._timeout_token is None
