"""Edge paths of the fault layer: dormant retry and streak boundaries.

Two under-tested corners called out by the verification work:

* the conservation ledger when ``retry=None`` leaves the timeout path
  dormant — crash-requeued requests must still be accounted exactly
  once, with no retry machinery to sweep them up;
* :class:`repro.faults.AdaptiveShaper`'s hysteresis exactly *at* the
  ``trip_ticks`` / ``clear_ticks`` streak boundaries, and the
  restore-after-clear edge (limit back to the planned bound, streak
  state fully reset for the next episode).
"""

import pytest

from repro.core.workload import Workload
from repro.faults import (
    AdaptiveShaper,
    ControllerConfig,
    FaultSchedule,
    check_conservation,
    run_resilient,
)
from repro.faults.schedule import random_schedule
from repro.sched.registry import make_scheduler
from repro.server.constant_rate import constant_rate_server
from repro.server.driver import DeviceDriver
from repro.sim.engine import Simulator
from tests.conftest import random_workload

CMIN, DELTA_C, DELTA = 10.0, 2.0, 0.5


class TestConservationWithDormantRetry:
    """``retry=None``: no timeouts, no drops — yet nothing may leak."""

    def test_healthy_run_completes_everything(self):
        workload = random_workload(101, n=60, horizon=4.0)
        result = run_resilient(
            workload, "miser", CMIN, DELTA_C, DELTA, retry=None
        )
        assert result.conservation is not None
        assert result.conservation.ok
        assert len(result.completed) == len(workload)
        assert result.dropped == [] and result.shed == []

    def test_crash_requeue_conserves_without_retry(self):
        workload = random_workload(102, n=80, horizon=4.0)
        schedule = random_schedule(7, horizon=4.0, crashes=2, droops=1, storms=1)
        result = run_resilient(
            workload,
            "miser",
            CMIN,
            DELTA_C,
            DELTA,
            schedule=schedule,
            retry=None,
            inflight="requeue",
        )
        assert result.conservation is not None and result.conservation.ok
        # The dormant retry path must not have dropped anything: with
        # requeue semantics every arrival eventually completes.
        assert len(result.completed) == len(workload)
        assert result.dropped == []
        # Re-audit the ledgers through the public checker directly.
        report = check_conservation(
            list(result.completed) + list(result.dropped) + list(result.shed),
            result.completed,
            dropped=result.dropped,
            shed=result.shed,
        )
        assert report.ok

    def test_no_retry_means_zero_retry_counters(self):
        workload = random_workload(103, n=50, horizon=4.0)
        schedule = random_schedule(9, horizon=4.0, crashes=1, droops=1, storms=0)
        result = run_resilient(
            workload, "fairqueue", CMIN, DELTA_C, DELTA,
            schedule=schedule, retry=None,
        )
        assert result.conservation is not None and result.conservation.ok
        # Crash requeues are not driver timeouts: with retry=None no
        # request may carry a timeout-retry beyond the crash requeues,
        # and every completion is unique.
        assert len({id(r) for r in result.completed}) == len(result.completed)

    def test_empty_schedule_matches_empty_ledgers(self):
        result = run_resilient(
            Workload([]), "fcfs", CMIN, DELTA_C, DELTA,
            schedule=FaultSchedule(), retry=None,
        )
        assert result.conservation is not None and result.conservation.ok
        assert result.completed == []


def _shaper(config):
    sim = Simulator()
    scheduler = make_scheduler("miser", CMIN, DELTA_C, DELTA)
    driver = DeviceDriver(
        sim, constant_rate_server(sim, CMIN + DELTA_C), scheduler
    )
    return driver, AdaptiveShaper(driver, config=config)


def _window(driver, completed, missed):
    driver.q1_completed += completed
    driver.q1_missed += missed


class TestShaperStreakBoundaries:
    """Trip and clear must fire on exactly the Nth tick, not around it."""

    def test_trip_fires_on_exactly_the_trip_ticks_th_bad_tick(self):
        driver, shaper = _shaper(ControllerConfig(trip_ticks=3, shrink=0.5))
        planned = shaper.planned_limit
        for tick in range(1, 4):
            _window(driver, completed=10, missed=5)
            shaper.tick()
            if tick < 3:
                assert not shaper.degraded, f"tripped early on tick {tick}"
                assert shaper.classifier.limit == planned
        assert shaper.degraded
        assert shaper.degrades == 1
        assert shaper.classifier.limit == max(1, int(planned * 0.5))

    def test_clear_fires_on_exactly_the_clear_ticks_th_clean_tick(self):
        driver, shaper = _shaper(ControllerConfig(trip_ticks=1, clear_ticks=4))
        planned = shaper.planned_limit
        _window(driver, completed=10, missed=5)
        shaper.tick()
        assert shaper.degraded
        for tick in range(1, 5):
            _window(driver, completed=10, missed=0)
            shaper.tick()
            if tick < 4:
                assert shaper.degraded, f"recovered early on tick {tick}"
                assert shaper.classifier.limit < planned
        assert not shaper.degraded
        assert shaper.recoveries == 1
        assert shaper.classifier.limit == planned

    def test_restore_after_clear_resets_streaks_for_next_episode(self):
        """The restore edge: a second trip/clear cycle behaves like the
        first — no stale streak state survives a recovery."""
        driver, shaper = _shaper(ControllerConfig(trip_ticks=2, clear_ticks=2))
        planned = shaper.planned_limit
        for episode in range(1, 3):
            # A single bad tick right after restore must NOT trip (the
            # bad streak starts from zero each episode).
            _window(driver, completed=10, missed=5)
            shaper.tick()
            assert not shaper.degraded
            _window(driver, completed=10, missed=5)
            shaper.tick()
            assert shaper.degraded
            assert shaper.degrades == episode
            # A single clean tick must NOT clear.
            _window(driver, completed=10, missed=0)
            shaper.tick()
            assert shaper.degraded
            _window(driver, completed=10, missed=0)
            shaper.tick()
            assert not shaper.degraded
            assert shaper.recoveries == episode
            assert shaper.classifier.limit == planned

    def test_interrupted_clean_streak_defers_recovery(self):
        driver, shaper = _shaper(
            ControllerConfig(
                trip_ticks=1,
                clear_ticks=2,
                enter_miss_rate=0.10,
                exit_miss_rate=0.02,
            )
        )
        _window(driver, completed=10, missed=5)
        shaper.tick()
        assert shaper.degraded
        _window(driver, completed=10, missed=0)
        shaper.tick()
        # Dead-band window (5% miss: between exit 2% and enter 10%)
        # resets the clean streak without tripping.
        _window(driver, completed=100, missed=5)
        shaper.tick()
        assert shaper.degraded
        _window(driver, completed=10, missed=0)
        shaper.tick()
        assert shaper.degraded, "clean streak must restart after dead band"
        _window(driver, completed=10, missed=0)
        shaper.tick()
        assert not shaper.degraded

    def test_recovery_limit_equals_planned_not_just_bigger(self):
        driver, shaper = _shaper(
            ControllerConfig(trip_ticks=1, clear_ticks=1, shrink=0.5)
        )
        planned = shaper.planned_limit
        # Degrade twice: limit shrinks geometrically below planned/2.
        for _ in range(2):
            _window(driver, completed=10, missed=5)
            shaper.tick()
        assert shaper.classifier.limit <= max(1, int(planned * 0.25))
        _window(driver, completed=10, missed=0)
        shaper.tick()
        assert shaper.classifier.limit == planned
