"""Fault schedule validation, ordering, and seeded generation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    Crash,
    FaultSchedule,
    RateDroop,
    SpikeStorm,
    random_schedule,
)


class TestEventValidation:
    def test_crash(self):
        crash = Crash(start=1.0, duration=2.0, unit=1)
        assert crash.end == 3.0
        with pytest.raises(ConfigurationError):
            Crash(start=-1.0, duration=2.0)
        with pytest.raises(ConfigurationError):
            Crash(start=1.0, duration=0.0)
        with pytest.raises(ConfigurationError):
            Crash(start=1.0, duration=1.0, unit=-1)

    def test_droop(self):
        with pytest.raises(ConfigurationError):
            RateDroop(start=2.0, end=1.0, factor=2.0)
        with pytest.raises(ConfigurationError):
            RateDroop(start=1.0, end=2.0, factor=1.0)
        with pytest.raises(ConfigurationError):
            RateDroop(start=-0.5, end=2.0, factor=2.0)

    def test_storm(self):
        with pytest.raises(ConfigurationError):
            SpikeStorm(start=1.0, end=2.0, probability=0.0, factor=3.0)
        with pytest.raises(ConfigurationError):
            SpikeStorm(start=1.0, end=2.0, probability=1.5, factor=3.0)
        with pytest.raises(ConfigurationError):
            SpikeStorm(start=1.0, end=2.0, probability=0.5, factor=0.9)


class TestFaultSchedule:
    def test_sorts_and_partitions(self):
        schedule = FaultSchedule([
            SpikeStorm(5.0, 6.0, 0.2, 3.0),
            Crash(3.0, 1.0),
            RateDroop(1.0, 2.0, 2.0),
            Crash(0.0, 1.0, unit=1),
        ])
        assert len(schedule) == 4
        assert schedule
        assert [c.start for c in schedule.crashes] == [3.0, 0.0]  # by unit, start
        assert schedule.last_clear == 6.0
        assert "crash" in schedule.describe()

    def test_empty(self):
        schedule = FaultSchedule()
        assert not schedule
        assert schedule.last_clear == 0.0
        assert schedule.describe() == "no faults"

    def test_same_unit_crash_overlap_rejected(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            FaultSchedule([Crash(0.0, 2.0), Crash(1.0, 2.0)])

    def test_different_unit_crashes_may_overlap(self):
        schedule = FaultSchedule([Crash(0.0, 2.0, unit=0), Crash(1.0, 2.0, unit=1)])
        assert len(schedule.crashes) == 2

    def test_droop_overlap_rejected(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            FaultSchedule([RateDroop(0.0, 2.0, 2.0), RateDroop(1.0, 3.0, 3.0)])

    def test_kinds_may_overlap_each_other(self):
        schedule = FaultSchedule([
            Crash(0.0, 2.0),
            RateDroop(0.5, 1.5, 2.0),
            SpikeStorm(0.5, 1.5, 0.2, 2.0),
        ])
        assert len(schedule) == 3

    def test_unknown_event_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            FaultSchedule(["crash at noon"])


class TestRandomSchedule:
    def test_reproducible(self):
        a = random_schedule(42, horizon=100.0, crashes=2, droops=2, storms=2)
        b = random_schedule(42, horizon=100.0, crashes=2, droops=2, storms=2)
        assert a.events == b.events
        assert len(a) == 6

    def test_seed_changes_schedule(self):
        a = random_schedule(1, horizon=100.0)
        b = random_schedule(2, horizon=100.0)
        assert a.events != b.events

    def test_per_kind_streams_independent(self):
        """Adding storms must not move the crash windows."""
        few = random_schedule(7, horizon=100.0, crashes=2, storms=0, droops=0)
        many = random_schedule(7, horizon=100.0, crashes=2, storms=3, droops=3)
        assert few.crashes == many.crashes

    def test_windows_inside_measurement_span(self):
        for seed in range(10):
            schedule = random_schedule(
                seed, horizon=100.0, crashes=3, droops=3, storms=3, units=2
            )
            for event in schedule.events:
                assert event.start >= 10.0  # after warm-up
                end = event.end if isinstance(event, Crash) else event.end
                assert end <= 85.0 + 1e-9  # recovery tail preserved
            assert all(c.unit in (0, 1) for c in schedule.crashes)

    def test_crash_length_capped(self):
        for seed in range(10):
            schedule = random_schedule(seed, horizon=100.0, crashes=3)
            for crash in schedule.crashes:
                assert crash.duration <= 15.0 + 1e-9  # max_crash_fraction

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_schedule(0, horizon=0.0)
        with pytest.raises(ConfigurationError):
            random_schedule(0, horizon=10.0, units=0)
