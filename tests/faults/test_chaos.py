"""Chaos suite: randomized fault schedules, conservation, restoration.

The two acceptance criteria of the fault plane live here:

* **conservation** — for every seeded schedule and every policy, each
  arrival completes, is shed, or is dropped exactly once (the harness
  asserts this internally; the tests also audit the report);
* **restoration** — with adaptive shaping, ``Q1`` deadline compliance
  over arrivals after the last fault clears returns to within one
  percentage point of the healthy baseline.
"""

import numpy as np
import pytest

from repro.core.workload import Workload
from repro.exceptions import SimulationError
from repro.faults import (
    RESILIENCE_POLICIES,
    check_conservation,
    run_chaos,
    run_resilient,
)

CMIN, DELTA_C, DELTA = 30.0, 10.0, 0.2
RESTORE_TOLERANCE = 0.01

CHAOS_SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def workload():
    gen = np.random.default_rng(23)
    return Workload(np.sort(gen.uniform(0.0, 30.0, 700)), name="chaos")


@pytest.fixture(scope="module")
def healthy_baseline(workload):
    """Healthy-run compliance per policy (computed once)."""
    baseline = {}
    for policy in RESILIENCE_POLICIES:
        result = run_resilient(workload, policy, CMIN, DELTA_C, DELTA)
        baseline[policy] = (
            result.fraction_within()
            if policy == "fcfs"
            else result.q1_compliance()
        )
    return baseline


class TestConservation:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    @pytest.mark.parametrize("policy", RESILIENCE_POLICIES)
    def test_every_arrival_accounted_exactly_once(self, workload, policy, seed):
        result = run_chaos(workload, policy, CMIN, DELTA_C, DELTA, seed=seed)
        report = result.conservation
        assert report.ok, report.summary()
        assert report.injected == len(workload)
        assert (
            report.completed + report.dropped + report.shed == report.injected
        )

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_drop_disposition_conserves_too(self, workload, seed):
        """inflight='drop' loses in-flight requests to the dropped ledger
        — never silently."""
        from repro.faults import RetryPolicy, random_schedule

        schedule = random_schedule(seed, horizon=workload.duration, crashes=2)
        result = run_resilient(
            workload,
            "miser",
            CMIN,
            DELTA_C,
            DELTA,
            schedule=schedule,
            retry=RetryPolicy(timeout_q1=2.0, timeout_q2=8.0),
            inflight="drop",
        )
        assert result.conservation.ok

    def test_violation_detected(self):
        """The auditor itself: leaks and double-counts are caught."""
        from repro.core.request import Request

        requests = [Request(arrival=float(i), index=i) for i in range(4)]
        leaked = check_conservation(requests, requests[:3])
        assert not leaked.ok and leaked.missing == (3,)
        double = check_conservation(
            requests, requests, dropped=[requests[0]]
        )
        assert not double.ok and 0 in double.duplicated
        foreign = check_conservation(
            requests[:2], requests[:2] + [Request(arrival=9.0, index=9)]
        )
        assert not foreign.ok and foreign.foreign == (9,)

    def test_assert_conservation_raises(self):
        from repro.core.request import Request
        from repro.faults import assert_conservation

        requests = [Request(arrival=0.0, index=0)]
        with pytest.raises(SimulationError, match="VIOLATED"):
            assert_conservation(requests, [])


class TestRestoration:
    @pytest.mark.parametrize("policy", [p for p in RESILIENCE_POLICIES if p != "fcfs"])
    def test_adaptive_restores_q1_compliance(
        self, workload, healthy_baseline, policy
    ):
        """After the last fault clears, adaptive shaping brings guaranteed
        compliance back to within 1% of the healthy run."""
        result = run_chaos(workload, policy, CMIN, DELTA_C, DELTA, seed=1)
        post = result.q1_compliance_after(result.schedule.last_clear)
        assert post == pytest.approx(
            healthy_baseline[policy], abs=RESTORE_TOLERANCE
        ) or post >= healthy_baseline[policy] - RESTORE_TOLERANCE

    def test_controller_acted_and_recovered(self, workload):
        result = run_chaos(workload, "miser", CMIN, DELTA_C, DELTA, seed=1)
        assert result.degrades is not None and result.degrades > 0
        assert result.recoveries is not None and result.recoveries > 0
        assert result.samples, "adaptive run must carry sampler records"

    def test_planned_bound_restored_after_faults(self, workload):
        """The final classifier limit equals the planned C*delta bound —
        the controller does not leave the system permanently throttled."""
        from repro.sched.classifier import OnlineRTTClassifier

        planned = OnlineRTTClassifier(CMIN, DELTA).limit
        result = run_chaos(workload, "fairqueue", CMIN, DELTA_C, DELTA, seed=1)
        assert result.final_limit == planned


class TestDeterminism:
    def test_chaos_run_reproducible(self, workload):
        a = run_chaos(workload, "miser", CMIN, DELTA_C, DELTA, seed=5)
        b = run_chaos(workload, "miser", CMIN, DELTA_C, DELTA, seed=5)
        assert a.schedule.events == b.schedule.events
        assert [r.completion for r in a.completed] == [
            r.completion for r in b.completed
        ]
        assert a.degrades == b.degrades and a.final_limit == b.final_limit

    def test_seed_matters(self, workload):
        a = run_chaos(workload, "miser", CMIN, DELTA_C, DELTA, seed=5)
        b = run_chaos(workload, "miser", CMIN, DELTA_C, DELTA, seed=6)
        assert a.schedule.events != b.schedule.events


class TestHealthyPathIdentical:
    @pytest.mark.parametrize("policy", RESILIENCE_POLICIES)
    def test_bit_identical_to_run_policy(self, workload, policy):
        """No faults, no retry, no controller: the resilient stack must
        reproduce run_policy's response times exactly."""
        from repro.shaping import run_policy

        plain = run_policy(workload, policy, CMIN, DELTA_C, DELTA)
        resilient = run_resilient(workload, policy, CMIN, DELTA_C, DELTA)
        assert list(plain.overall.samples) == list(resilient.overall.samples)
        assert plain.primary_misses == resilient.primary_misses
        assert list(plain.primary.samples) == list(resilient.primary.samples)
        assert list(plain.overflow.samples) == list(resilient.overflow.samples)


class TestMissCounterAgreement:
    """``primary_deadline_misses()`` returns the incrementally maintained
    ``q1_missed`` counter; it must agree with an O(n) rescan of the
    completed ledger under chaos (retries, demotions, drops and all)."""

    @pytest.mark.parametrize("policy", RESILIENCE_POLICIES)
    def test_counter_agrees_with_rescan(self, workload, policy):
        from repro.core.request import QoSClass

        result = run_chaos(workload, policy, CMIN, DELTA_C, DELTA, seed=0)
        rescan = sum(
            1
            for r in result.completed
            if r.qos_class is QoSClass.PRIMARY and not r.met_deadline
        )
        assert result.primary_misses == rescan


class TestWindowedChaos:
    """Chaos with an AQM window armed: conservation extends to window
    residency, and every window drains by end of run."""

    @pytest.mark.parametrize("aqm", ["static", "codel"])
    @pytest.mark.parametrize("policy", ["miser", "split"])
    def test_conserves_and_drains(self, workload, policy, aqm):
        result = run_chaos(
            workload, policy, CMIN, DELTA_C, DELTA, seed=1, aqm=aqm
        )
        assert result.conservation.ok, result.conservation.summary()
        assert result.aqm == aqm
        snap = result.window
        windows = [snap] if "policy" in snap else list(snap.values())
        assert windows and all(w["occupancy"] == 0 for w in windows)

    def test_shared_window_under_chaos(self, workload):
        result = run_chaos(
            workload,
            "split",
            CMIN,
            DELTA_C,
            DELTA,
            seed=2,
            aqm="static",
            aqm_shared=True,
        )
        assert result.conservation.ok, result.conservation.summary()
        assert result.window["policy"] == "static"
        assert result.window["occupancy"] == 0

    def test_timeouts_rescue_device_queue_rot(self):
        """A request rotting in a bloated device queue behind a slow
        server is timed out, pulled from the queue, and retried — the
        failure mode the window-entry timeout exists to catch."""
        from repro.faults import RetryPolicy
        from repro.server.aqm import InflightWindow
        from repro.server.constant_rate import ConstantRateModel
        from repro.faults.server import FaultableServer
        from repro.sched.registry import make_scheduler
        from repro.server.driver import DeviceDriver
        from repro.sim.engine import Simulator

        sim = Simulator()
        server = FaultableServer(sim, ConstantRateModel(0.25), name="slow")
        driver = DeviceDriver(
            sim,
            server,
            make_scheduler("fcfs", CMIN, DELTA_C, DELTA),
            retry=RetryPolicy(timeout_q2=1.0, max_retries=1),
            window=InflightWindow(depth=8),
        )
        from repro.core.request import Request

        requests = [Request(arrival=0.0, index=i) for i in range(4)]
        for r in requests:
            sim.schedule(0.0, lambda r=r: driver.on_arrival(r))
        sim.run(until=30.0)
        # 4 s service vs 1 s timeout: every attempt times out; the three
        # device-queued requests timed out *in the queue*, not in service.
        assert driver.completed == []
        assert sorted(r.index for r in driver.dropped) == [0, 1, 2, 3]
        assert driver.fault_ledger()["window"] == 0
