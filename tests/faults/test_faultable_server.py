"""Crash/recover/abort semantics of the faultable server and injector."""

import pytest

from repro.core.request import Request
from repro.exceptions import ConfigurationError, SchedulerError
from repro.faults import (
    Crash,
    FaultInjector,
    FaultSchedule,
    FaultState,
    FaultableServer,
    FaultyModel,
    RateDroop,
    SpikeStorm,
)
from repro.server.constant_rate import ConstantRateModel
from repro.sim.engine import Simulator


def _server(sim, rate=10.0, inflight="requeue"):
    return FaultableServer(
        sim, ConstantRateModel(rate), name="srv", inflight=inflight
    )


class TestCrashRecover:
    def test_inflight_validation(self):
        with pytest.raises(ConfigurationError):
            _server(Simulator(), inflight="explode")

    def test_down_reports_busy_and_refuses_dispatch(self):
        sim = Simulator()
        server = _server(sim)
        server.crash()
        assert server.busy
        with pytest.raises(SchedulerError):
            server.dispatch(Request(arrival=0.0))

    def test_idempotent(self):
        server = _server(Simulator())
        server.crash()
        server.crash()
        assert server.crashes == 1
        server.recover()
        server.recover()
        assert server.repairs == 1
        assert not server.down

    def test_crash_requeues_inflight(self):
        sim = Simulator()
        server = _server(sim)
        requeued = []
        server.on_requeue = requeued.append
        request = Request(arrival=0.0)
        server.dispatch(request)
        sim.schedule(0.05, server.crash)
        sim.run()
        assert requeued == [request]
        assert server.requeues == 1
        assert request.dispatch is None  # ready for re-dispatch
        assert request.completion is None  # never completed

    def test_crash_drops_inflight(self):
        sim = Simulator()
        server = _server(sim, inflight="drop")
        lost = []
        server.on_loss = lost.append
        request = Request(arrival=0.0)
        server.dispatch(request)
        sim.schedule(0.05, server.crash)
        sim.run()
        assert lost == [request]
        assert server.losses == 1

    def test_busy_time_refunded(self):
        """Utilization counts only service actually delivered."""
        sim = Simulator()
        server = _server(sim, rate=10.0)  # 0.1 s per request
        server.on_requeue = lambda r: None
        server.dispatch(Request(arrival=0.0))
        sim.schedule(0.04, server.crash)
        sim.run()
        assert server.busy_time == pytest.approx(0.04)

    def test_recovery_callback(self):
        sim = Simulator()
        server = _server(sim)
        pings = []
        server.on_recovery = lambda: pings.append(sim.now)
        sim.schedule(1.0, server.crash)
        sim.schedule(2.0, server.recover)
        sim.run()
        assert pings == [2.0]
        assert server.fault_counters()["repairs"] == 1


class TestAbort:
    def test_abort_inflight(self):
        sim = Simulator()
        server = _server(sim)
        request = Request(arrival=0.0)
        server.dispatch(request)
        assert server.abort(request)
        assert not server.busy
        assert server.aborts == 1
        sim.run()  # cancelled completion must not fire
        assert request.completion is None

    def test_abort_misses_completed(self):
        sim = Simulator()
        server = _server(sim)
        request = Request(arrival=0.0)
        server.dispatch(request)
        sim.run()
        assert request.completion is not None
        assert not server.abort(request)
        assert server.aborts == 0


class TestFaultyModel:
    def test_healthy_passthrough(self):
        state = FaultState()
        model = FaultyModel(ConstantRateModel(10.0), state)
        request = Request(arrival=0.0)
        assert model.service_time(request) == pytest.approx(0.1)
        assert not state.degraded

    def test_droop_inflates(self):
        state = FaultState()
        model = FaultyModel(ConstantRateModel(10.0), state)
        state.droop_factor = 3.0
        assert state.degraded
        assert model.service_time(Request(arrival=0.0)) == pytest.approx(0.3)

    def test_storm_spikes_reproducibly(self):
        request = Request(arrival=0.0)

        def draws(seed):
            state = FaultState()
            state.spike_probability = 0.5
            state.spike_factor = 10.0
            model = FaultyModel(ConstantRateModel(10.0), state, seed=seed)
            return [model.service_time(request) for _ in range(100)]

        assert draws(1) == draws(1)
        assert draws(1) != draws(2)
        spiked = sum(1 for d in draws(1) if d > 0.5)
        assert 20 <= spiked <= 80


class TestFaultInjector:
    def test_crash_needs_server(self):
        with pytest.raises(ConfigurationError, match="crashable"):
            FaultInjector(Simulator(), FaultSchedule([Crash(1.0, 1.0)]))

    def test_crash_unit_out_of_range(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError, match="unit 3"):
            FaultInjector(
                sim,
                FaultSchedule([Crash(1.0, 1.0, unit=3)]),
                servers=[_server(sim)],
            )

    def test_droop_needs_state(self):
        with pytest.raises(ConfigurationError, match="FaultState"):
            FaultInjector(Simulator(), FaultSchedule([RateDroop(1.0, 2.0, 2.0)]))

    def test_windows_flip_state_at_instants(self):
        sim = Simulator()
        state = FaultState()
        server = _server(sim)
        injector = FaultInjector(
            sim,
            FaultSchedule([
                Crash(1.0, 1.0),
                RateDroop(2.0, 3.0, 2.5),
                SpikeStorm(4.0, 5.0, 0.3, 4.0),
            ]),
            servers=[server],
            state=state,
        )
        injector.install()
        trace = []

        def observe():
            trace.append((
                sim.now, server.down, state.droop_factor, state.spike_probability
            ))

        for t in (0.5, 1.5, 2.5, 3.5, 4.5, 5.5):
            sim.schedule(t + 1e-6, observe)
        sim.run()
        assert trace == [
            (pytest.approx(0.5 + 1e-6), False, 1.0, 0.0),
            (pytest.approx(1.5 + 1e-6), True, 1.0, 0.0),
            (pytest.approx(2.5 + 1e-6), False, 2.5, 0.0),
            (pytest.approx(3.5 + 1e-6), False, 1.0, 0.0),
            (pytest.approx(4.5 + 1e-6), False, 1.0, 0.3),
            (pytest.approx(5.5 + 1e-6), False, 1.0, 0.0),
        ]
        assert server.crashes == 1 and server.repairs == 1
