"""Structural failover: crashed units in farms and the split topology."""

from repro.core.request import QoSClass, Request
from repro.core.workload import Workload
from repro.faults import FaultableServer, RetryPolicy
from repro.sched.fcfs import FCFSScheduler
from repro.server.cluster import SplitSystem
from repro.server.constant_rate import ConstantRateModel
from repro.server.driver import DeviceDriver
from repro.server.farm import ServerFarm
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource


class TestFaultableFarm:
    def _farm(self, sim, units=3, rate=10.0):
        return ServerFarm(
            sim,
            [ConstantRateModel(rate) for _ in range(units)],
            name="farm",
            unit_factory=FaultableServer,
        )

    def test_down_unit_diverts_dispatch(self):
        """With one unit crashed the farm keeps serving on the others."""
        sim = Simulator()
        farm = self._farm(sim)
        driver = DeviceDriver(sim, farm, FCFSScheduler(), retry=RetryPolicy())
        farm.units[0].crash()
        assert farm.available == 2
        workload = Workload([0.0, 0.01, 0.02, 0.03], name="divert")
        WorkloadSource(sim, workload, driver).start()
        sim.run()
        assert len(driver.completed) == 4
        assert farm.units[0].completed == 0  # the down unit served nothing

    def test_all_units_down_queues_until_repair(self):
        sim = Simulator()
        farm = self._farm(sim, units=2)
        driver = DeviceDriver(sim, farm, FCFSScheduler(), retry=RetryPolicy())
        for unit in farm.units:
            unit.crash()
        assert farm.busy  # down == busy to the driver
        workload = Workload([0.0, 0.1], name="wait")
        sim.schedule(1.0, farm.units[0].recover)
        WorkloadSource(sim, workload, driver).start()
        sim.run()
        assert len(driver.completed) == 2
        assert all(r.completion > 1.0 for r in driver.completed)

    def test_unit_crash_requeue_propagates_to_driver(self):
        sim = Simulator()
        farm = self._farm(sim, units=2, rate=1.0)
        driver = DeviceDriver(sim, farm, FCFSScheduler(), retry=RetryPolicy())
        workload = Workload([0.0], name="one")
        sim.schedule(0.2, farm.units[0].crash)
        sim.schedule(0.5, farm.units[0].recover)
        WorkloadSource(sim, workload, driver).start()
        sim.run()
        assert len(driver.completed) == 1
        request = driver.completed[0]
        assert request.retries == 1  # interrupted once, finished elsewhere
        assert farm.units[0].requeues == 1

    def test_plain_farm_exposes_no_fault_hooks(self):
        """Without faultable units the farm must not grow fault hooks —
        the driver's hasattr wiring stays off and behavior is unchanged."""
        sim = Simulator()
        farm = ServerFarm(sim, [ConstantRateModel(10.0)], name="plain")
        assert not hasattr(farm, "on_requeue")
        assert not hasattr(farm, "on_loss")
        assert not hasattr(farm, "on_recovery")


class TestSplitFailover:
    def _system(self, sim, retry=None):
        def factory(sim_, capacity, name):
            return FaultableServer(sim_, ConstantRateModel(capacity), name=name)

        return SplitSystem(
            sim, cmin=10.0, delta_c=5.0, delta=0.5,
            server_factory=factory, retry=retry,
        )

    def test_primary_down_fails_over_demoted(self):
        """A Q1 arrival facing a dead primary server is demoted (slot
        released) and served by the overflow server."""
        sim = Simulator()
        system = self._system(sim, retry=RetryPolicy())
        system.servers[0].crash()
        request = Request(arrival=0.0)
        sim.schedule(0.0, lambda: system.on_arrival(request))
        sim.run()
        assert system.failovers == 1
        assert request.qos_class is QoSClass.OVERFLOW
        assert request.completion is not None
        assert system.classifier.len_q1 == 0
        assert system.overflow_driver.completed == [request]

    def test_overflow_down_borrows_primary(self):
        sim = Simulator()
        system = self._system(sim, retry=RetryPolicy())
        system.servers[1].crash()
        # Fill the classifier's Q1 budget so the next arrival is overflow.
        first = Request(arrival=0.0, index=0)
        sim.schedule(0.0, lambda: system.on_arrival(first))
        extra = [Request(arrival=0.0, index=1 + i) for i in range(20)]
        for r in extra:
            sim.schedule(0.0, lambda r=r: system.on_arrival(r))
        sim.run()
        done = system.completed
        assert len(done) == 21
        assert system.failovers > 0
        # Everything ran on the primary server; the dead one served nothing.
        assert system.overflow_driver.completed == []

    def test_no_failover_keeps_per_driver_collectors(self):
        """by_class returns the original per-driver collectors when no
        failover happened — the bit-identical healthy path."""
        sim = Simulator()
        system = self._system(sim)
        request = Request(arrival=0.0)
        sim.schedule(0.0, lambda: system.on_arrival(request))
        sim.run()
        assert system.failovers == 0
        by_class = system.by_class
        assert by_class[QoSClass.PRIMARY] is system.primary_driver.by_class[
            QoSClass.PRIMARY
        ]
        assert by_class[QoSClass.OVERFLOW] is system.overflow_driver.by_class[
            QoSClass.OVERFLOW
        ]

    def test_both_down_waits_for_repair(self):
        sim = Simulator()
        system = self._system(sim, retry=RetryPolicy())
        for server in system.servers:
            server.crash()
        request = Request(arrival=0.0)
        sim.schedule(0.0, lambda: system.on_arrival(request))
        sim.schedule(2.0, system.servers[0].recover)
        sim.run()
        assert system.failovers == 0  # no live alternative at arrival
        assert request.completion is not None
        assert request.completion > 2.0
