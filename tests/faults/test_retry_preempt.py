"""Retry × preemption interaction.

A preemptive scheduler (SRPT / Nudge) can pull a request off the server
while its retry timeout is armed.  The driver must disarm exactly that
one timeout — a preemption is not a failure, so it must never burn
retry budget or double-retry — and re-arm a fresh timeout when the
request is re-dispatched.  Runs go through a
:class:`~repro.check.invariants.CheckingScheduler` so the scheduler-side
invariants (dispatch-before-completion, preemption legality) are
audited at the same time.
"""

import numpy as np
import pytest

from repro.check.invariants import CheckingScheduler
from repro.core.request import Request
from repro.core.workload import Workload
from repro.faults import FaultableServer, RetryPolicy
from repro.faults.invariants import assert_conservation
from repro.sched.registry import make_scheduler
from repro.server.constant_rate import ConstantRateModel
from repro.server.driver import DeviceDriver
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource

CMIN, DELTA_C, DELTA = 8.0, 2.0, 0.5


def _stack(policy, rate=1.0, retry=None):
    sim = Simulator()
    checker = CheckingScheduler(make_scheduler(policy, CMIN, DELTA_C, DELTA))
    server = FaultableServer(sim, ConstantRateModel(rate), name="srv")
    driver = DeviceDriver(sim, server, checker, retry=retry)
    return sim, server, checker, driver


@pytest.mark.parametrize("policy", ["srpt"])
class TestPreemptionDisarms:
    """SRPT is the only true preemptor: Nudge swaps *queued* requests
    (which hold no timeout — timeouts arm at dispatch), so the
    disarm-on-preempt path is SRPT's to exercise."""

    def test_preempt_disarms_exactly_one_timeout(self, policy):
        """At the preemption instant the victim's timeout is gone and
        only the preemptor's is armed."""
        sim, server, checker, driver = _stack(
            policy, rate=1.0, retry=RetryPolicy(timeout_q1=50.0, timeout_q2=50.0)
        )
        long = Request(arrival=0.0, service_demand=4.0)
        short = Request(arrival=0.0, service_demand=0.5)
        sim.schedule(0.0, lambda: driver.on_arrival(long))
        sim.schedule(1.0, lambda: driver.on_arrival(short))
        state = {}

        def audit():
            state["current"] = server.current
            state["tokens"] = dict(driver._timeouts)
            state["long_token"] = long._timeout_token
            state["short_token"] = short._timeout_token

        sim.schedule(1.1, audit)
        sim.run()
        assert state["current"] is short  # the preemption happened
        assert state["long_token"] is None  # victim's timeout disarmed
        assert set(state["tokens"]) == {state["short_token"]}
        assert driver.preemptions == 1

    def test_preempted_request_never_double_retries(self, policy):
        """Preemption burns no retry budget: both requests complete with
        zero retries and the conservation ledger balances."""
        sim, server, checker, driver = _stack(
            policy, rate=1.0, retry=RetryPolicy(timeout_q1=50.0, timeout_q2=50.0)
        )
        long = Request(arrival=0.0, service_demand=4.0)
        short = Request(arrival=0.0, service_demand=0.5)
        sim.schedule(0.0, lambda: driver.on_arrival(long))
        sim.schedule(1.0, lambda: driver.on_arrival(short))
        sim.run()
        assert sorted(r.index for r in driver.completed) == [
            r.index for r in (long, short)
        ]
        assert long.retries == 0 and short.retries == 0
        assert driver.demotions == 0
        assert driver._timeouts == {}
        assert_conservation([long, short], driver.completed)
        assert checker.violations == []

    def test_redispatch_rearms_fresh_timeout(self, policy):
        """A preempted-then-resumed request that then stalls must still
        time out: the re-dispatch armed a fresh (later) timeout."""
        sim, server, checker, driver = _stack(
            policy, rate=1.0, retry=RetryPolicy(timeout_q1=3.0, timeout_q2=3.0)
        )
        long = Request(arrival=0.0, service_demand=4.0)
        short = Request(arrival=0.0, service_demand=0.5)
        sim.schedule(0.0, lambda: driver.on_arrival(long))
        sim.schedule(1.0, lambda: driver.on_arrival(short))
        tokens = []
        sim.schedule(0.5, lambda: tokens.append(long._timeout_token))
        sim.schedule(2.0, lambda: tokens.append(long._timeout_token))
        sim.run()
        # Armed at t=0 (token t0), disarmed by the preemption at t=1,
        # re-armed on re-dispatch at t=1.5 with a strictly newer token.
        assert tokens[1] is not None and tokens[1] > tokens[0]
        # The long request resumed at 1.5 with 3.0 s of work left and a
        # 3.0 s timeout: it must complete (at 4.5), not get retried by a
        # leftover timeout from the first dispatch.
        assert long in driver.completed and long.retries == 0
        assert checker.violations == []

class TestNudgeSwap:
    def test_swap_leaves_timeout_accounting_alone(self):
        """A nudge swap reorders the queue before dispatch; neither
        participant holds a timeout yet, so the swap must not touch the
        table or burn budget."""
        sim, server, checker, driver = _stack(
            "nudge", rate=1.0, retry=RetryPolicy(timeout_q1=50.0, timeout_q2=50.0)
        )
        blocker = Request(arrival=0.0, service_demand=1.0)
        large = Request(arrival=0.1, service_demand=6.0)
        small = Request(arrival=0.2, service_demand=0.5)
        for t, r in ((0.0, blocker), (0.1, large), (0.2, small)):
            sim.schedule(t, lambda r=r: driver.on_arrival(r))
        state = {}
        sim.schedule(0.3, lambda: state.update(tokens=dict(driver._timeouts)))
        sim.run()
        assert checker.inner.swaps  # the swap actually happened
        # Only the in-service blocker was armed at audit time.
        assert set(state["tokens"]) == {1}
        # Small completes before large (the point of the swap), nobody
        # was retried, and the table drained.
        assert small.completion < large.completion
        assert all(r.retries == 0 for r in (blocker, large, small))
        assert driver._timeouts == {}
        assert checker.violations == []


@pytest.mark.parametrize("policy", ["srpt", "nudge"])
class TestPreemptRetryMix:
    def test_chaos_mix_conserves_with_preemption_and_retry(self, policy):
        """A bursty sized workload under preemption + tight timeouts:
        every arrival lands in exactly one ledger and the invariant
        auditor stays silent."""
        gen = np.random.default_rng(11)
        arrivals = np.sort(gen.uniform(0.0, 20.0, 120))
        sizes = gen.choice([0.2, 1.0, 6.0], size=120, p=[0.5, 0.4, 0.1])
        workload = Workload(arrivals, sizes=sizes, name="preempt-mix")
        sim, server, checker, driver = _stack(
            policy,
            rate=2.0,
            retry=RetryPolicy(
                timeout_q1=2.0, timeout_q2=8.0, max_retries=2, backoff_base=0.1
            ),
        )
        source = WorkloadSource(sim, workload, driver)
        source.start()
        sim.run()
        assert_conservation(
            source.requests, driver.completed, driver.dropped, driver.shed
        )
        assert checker.violations == []
        assert driver._timeouts == {}
        # No request ever exceeds its retry budget + initial attempt.
        for request in driver.completed + driver.dropped:
            assert request.retries <= 3
