"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestAnalyze:
    def test_library_trace(self, capsys):
        assert main(["analyze", "fintrans:10"]) == 0
        out = capsys.readouterr().out
        assert "mean_rate_iops" in out
        assert "arrival rate" in out

    def test_spc_file(self, capsys, tmp_path):
        path = tmp_path / "t.spc"
        main(["generate", "fintrans", str(path), "--duration", "10"])
        capsys.readouterr()
        assert main(["analyze", str(path)]) == 0
        assert "peak_to_mean" in capsys.readouterr().out


class TestPlan:
    def test_default_fractions(self, capsys):
        assert main(["plan", "websearch:10", "--delta-ms", "20"]) == 0
        out = capsys.readouterr().out
        assert "Cmin" in out
        assert "100.0%" in out
        assert "frees" in out


class TestSimulate:
    @pytest.mark.parametrize("policy", ["miser", "fcfs", "split"])
    def test_policies(self, capsys, policy):
        code = main(
            ["simulate", "fintrans:10", "--policy", policy, "--delta-ms", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "guaranteed-class misses" in out

    def test_capacity_override(self, capsys):
        code = main(
            ["simulate", "fintrans:10", "--cmin", "500", "--delta-c", "50"]
        )
        assert code == 0
        assert "500+50" in capsys.readouterr().out


class TestGenerate:
    def test_roundtrip(self, capsys, tmp_path):
        path = tmp_path / "out.spc"
        assert main(
            ["generate", "openmail", str(path), "--duration", "5", "--seed", "3"]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        from repro.traces import spc

        workload = spc.read_workload(path)
        assert len(workload) > 100

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate", "cello", "/tmp/x.spc"])


class TestReport:
    def test_full_report(self, capsys):
        assert main(["report", "fintrans:15", "--delta-ms", "20"]) == 0
        out = capsys.readouterr().out
        assert "Burstiness profile" in out
        assert "Capacity knee" in out
        assert "Price menu" in out
        assert "best policy" in out

    def test_report_sections_ordered(self, capsys):
        main(["report", "websearch:10", "--delta-ms", "50"])
        out = capsys.readouterr().out
        assert out.index("1. Burstiness") < out.index("2. Capacity")
        assert out.index("3. Price") < out.index("4. ")
