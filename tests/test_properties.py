"""Property-based tests (hypothesis) for the core invariants.

These encode the paper's theorems as executable properties over
arbitrary workloads:

* RTT optimality (Lemmas 1-3): RTT admits as many requests as an
  exhaustive offline search, in both server models.
* The Q1 deadline guarantee: every admitted request meets ``delta``.
* Planner correctness: ``Cmin`` is sufficient and minimal.
* Slack-tracker equivalence with the naive O(n) Algorithm 2 bookkeeping.
* Fair-queue weighted-share bounds.
* Workload transform algebra (merge/shift preserve counts and order).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import lower_bound_drops, max_admissible_bruteforce
from repro.core.capacity import CapacityPlanner
from repro.core.rtt import decompose, decompose_fluid, primary_response_times
from repro.core.slack import SlackTracker, no_constraint
from repro.core.workload import Workload
from repro.sched.fair import FairQueue
from repro.core.request import Request

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

#: Small sorted arrival sequences (ties allowed) on a millisecond grid.
small_arrivals = st.lists(
    st.integers(min_value=0, max_value=3000), min_size=1, max_size=11
).map(lambda xs: np.sort(np.asarray(xs, dtype=float)) / 1000.0)

#: Larger arrival sequences for non-exhaustive properties.
arrivals = st.lists(
    st.integers(min_value=0, max_value=20000), min_size=1, max_size=120
).map(lambda xs: np.sort(np.asarray(xs, dtype=float)) / 1000.0)

capacities = st.integers(min_value=1, max_value=12).map(float)
deltas = st.sampled_from([0.125, 0.25, 0.5, 1.0])


# ---------------------------------------------------------------------------
# RTT properties
# ---------------------------------------------------------------------------


@given(small_arrivals, capacities, deltas)
@settings(max_examples=60, deadline=None)
def test_rtt_discrete_is_offline_optimal(arr, capacity, delta):
    w = Workload(arr)
    opt = max_admissible_bruteforce(w, capacity, delta, discrete=True)
    assert decompose(w, capacity, delta).n_admitted == opt


@given(small_arrivals, capacities, deltas)
@settings(max_examples=60, deadline=None)
def test_rtt_fluid_is_offline_optimal(arr, capacity, delta):
    w = Workload(arr)
    opt = max_admissible_bruteforce(w, capacity, delta, discrete=False)
    assert decompose_fluid(w, capacity, delta).n_admitted == opt


@given(arrivals, capacities, deltas)
@settings(max_examples=60, deadline=None)
def test_rtt_admitted_requests_meet_deadline(arr, capacity, delta):
    result = decompose(Workload(arr), capacity, delta)
    responses = primary_response_times(result)
    if responses.size:
        assert responses.max() <= delta + 1e-9


@given(arrivals, capacities, deltas)
@settings(max_examples=40, deadline=None)
def test_rtt_drops_respect_busy_period_lower_bound(arr, capacity, delta):
    w = Workload(arr)
    assert decompose(w, capacity, delta).n_overflow >= lower_bound_drops(
        w, capacity, delta
    )


@given(arrivals, capacities, deltas)
@settings(max_examples=40, deadline=None)
def test_rtt_monotone_in_capacity(arr, capacity, delta):
    w = Workload(arr)
    low = decompose(w, capacity, delta).n_admitted
    high = decompose(w, capacity * 2, delta).n_admitted
    assert high >= low


@given(arrivals, capacities, deltas)
@settings(max_examples=40, deadline=None)
def test_fluid_admits_at_least_discrete(arr, capacity, delta):
    """Fluid service can only help: partial service counts toward the
    backlog bound, so the fluid model's admitted set is never smaller."""
    w = Workload(arr)
    assert (
        decompose_fluid(w, capacity, delta).n_admitted
        >= decompose(w, capacity, delta).n_admitted
    )


# ---------------------------------------------------------------------------
# Planner properties
# ---------------------------------------------------------------------------


@given(arrivals, deltas, st.sampled_from([0.5, 0.8, 0.9, 1.0]))
@settings(max_examples=30, deadline=None)
def test_planner_sufficient_and_minimal(arr, delta, fraction):
    w = Workload(arr)
    planner = CapacityPlanner(w, delta)
    cmin = planner.min_capacity(fraction)
    required = planner._required_count(fraction)
    assert planner.admitted_at(cmin) >= required
    if cmin > 1:
        assert planner.admitted_at(cmin - 1) < required


# ---------------------------------------------------------------------------
# Slack tracker vs naive Algorithm 2 bookkeeping
# ---------------------------------------------------------------------------


@st.composite
def slack_ops(draw):
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("insert"), st.integers(0, 10)),
                st.just(("remove",)),
                st.just(("decrement",)),
                st.just(("min",)),
            ),
            max_size=120,
        )
    )


@given(slack_ops())
@settings(max_examples=60, deadline=None)
def test_slack_tracker_equals_naive(ops):
    tracker = SlackTracker()
    naive: dict[int, int] = {}
    key = 0
    for op in ops:
        if op[0] == "insert":
            tracker.insert(key, op[1])
            naive[key] = op[1]
            key += 1
        elif op[0] == "remove":
            if naive:
                victim = next(iter(naive))
                tracker.remove(victim)
                del naive[victim]
        elif op[0] == "decrement":
            tracker.decrement_all()
            naive = {k: v - 1 for k, v in naive.items()}
        else:
            expected = min(naive.values()) if naive else no_constraint()
            assert tracker.min_slack() == expected
    expected = min(naive.values()) if naive else no_constraint()
    assert tracker.min_slack() == expected


# ---------------------------------------------------------------------------
# Fair queue properties
# ---------------------------------------------------------------------------


@given(
    st.sampled_from(["sfq", "wf2q"]),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=10, max_value=40),
)
@settings(max_examples=40, deadline=None)
def test_fair_queue_share_bound(variant, w1, w2, rounds):
    """While both flows stay backlogged, each flow's service count stays
    within one maximum-cost unit of its weighted fair share."""
    q = FairQueue({1: float(w1), 2: float(w2)}, variant=variant)
    for _ in range(rounds):
        q.add(1, Request(arrival=0.0))
        q.add(2, Request(arrival=0.0))
    served = {1: 0, 2: 0}
    total = w1 + w2
    for n in range(1, rounds + 1):  # stop while both still backlogged
        fid, _ = q.select()
        served[fid] += 1
        assert abs(served[1] - n * w1 / total) <= max(1 / w1, 1 / w2) * max(w1, w2)


@given(st.sampled_from(["sfq", "wf2q"]), st.integers(min_value=1, max_value=30))
@settings(max_examples=30, deadline=None)
def test_fair_queue_conserves_requests(variant, n):
    q = FairQueue({1: 1.0, 2: 2.0}, variant=variant)
    expected = []
    for i in range(n):
        r = Request(arrival=float(i))
        expected.append(r)
        q.add(1 + i % 2, r)
    served = []
    while (choice := q.select()) is not None:
        served.append(choice[1])
    assert sorted(r.arrival for r in served) == [r.arrival for r in expected]


# ---------------------------------------------------------------------------
# Workload algebra
# ---------------------------------------------------------------------------


@given(arrivals, arrivals)
@settings(max_examples=40, deadline=None)
def test_merge_is_sorted_union(a, b):
    merged = Workload(a).merge(Workload(b))
    assert len(merged) == a.size + b.size
    assert np.array_equal(
        merged.arrivals, np.sort(np.concatenate([a, b]))
    )


@given(arrivals, st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=40, deadline=None)
def test_shift_preserves_gaps(arr, offset):
    w = Workload(arr)
    shifted = w.shift(offset)
    assert np.allclose(np.diff(shifted.arrivals), np.diff(w.arrivals))


@given(arrivals, st.floats(min_value=0.01, max_value=50.0))
@settings(max_examples=40, deadline=None)
def test_wrap_shift_preserves_count(arr, offset):
    w = Workload(arr)
    assert len(w.shift(offset, wrap=True)) == len(w)
