"""``repro-serve`` CLI: every subcommand, against the golden corpus."""

from __future__ import annotations

import pytest

from repro.serve.cli import main

GOLDEN = "tests/corpus/adversarial-boundary.json"


class TestReplay:
    def test_golden_replay_with_parity_certificate(self, capsys):
        status = main(
            ["replay", GOLDEN, "--policy", "split", "--chunks", "3"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "serve parity OK" in out
        assert "bit-identical" in out

    def test_no_parity_skips_the_certificate(self, capsys):
        status = main(["replay", GOLDEN, "--no-parity"])
        out = capsys.readouterr().out
        assert status == 0
        assert "serve parity" not in out

    def test_library_workload_is_planned(self, capsys):
        status = main(
            [
                "replay",
                "websearch",
                "--duration",
                "5",
                "--policy",
                "miser",
                "--chunks",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "miser on WebSearch" in out

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["replay", "nosuch"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestLive:
    def test_live_runs_the_shadow_autoscaler(self, capsys):
        status = main(
            ["live", "--rate", "20", "--duration", "8", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "autoscaler:" in out
        assert "live-poisson-3" in out

    def test_empty_live_trace_exits_1(self, capsys):
        status = main(
            ["live", "--rate", "0.0001", "--duration", "0.1"]
        )
        assert status == 1
        assert "empty" in capsys.readouterr().out


class TestChaos:
    def test_chaos_reports_post_fault_compliance(self, capsys):
        status = main(
            ["chaos", GOLDEN, "--policy", "split", "--chunks", "2"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "post-fault q1 compliance" in out


class TestPlace:
    def test_place_prints_the_deadline_accounting(self, capsys):
        status = main(
            [
                "place",
                "--nodes",
                "near:50:0.005,far:200:0.03",
                "--cmin",
                "20",
                "--delta-c",
                "5",
                "--delta",
                "0.05",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "Q1 -> near" in out
        assert "latency tax" in out

    @pytest.mark.parametrize(
        "nodes", ["near", "a:b:c:d", "near:notanumber"]
    )
    def test_bad_node_specs_exit_2(self, capsys, nodes):
        status = main(
            ["place", "--nodes", nodes, "--cmin", "20"]
        )
        capsys.readouterr()
        assert status == 2
