"""Soak: 10^5 virtual seconds of chaos with conservation every epoch.

Marked ``soak`` (see ``pyproject.toml``): the CI serve-smoke job runs it
explicitly with ``-m soak``; it also rides along in tier-1 because
virtual time keeps the wall-clock cost to about a second.
"""

from __future__ import annotations

import pytest

from repro.faults.retry import RetryPolicy
from repro.faults.schedule import random_schedule
from repro.serve import AutoscalerConfig, ServiceHarness
from repro.traces.synthetic import poisson_workload

HORIZON = 1e5
EPOCH = 1_000.0
DELTA = 0.5
SEED = 2009


@pytest.mark.soak
def test_service_survives_1e5_virtual_seconds_of_chaos():
    workload = poisson_workload(0.3, duration=HORIZON, seed=17)
    schedule = random_schedule(
        SEED, horizon=HORIZON, crashes=2, droops=2, storms=2, units=2
    )
    retry = RetryPolicy(
        timeout_q1=10 * DELTA,
        timeout_q2=40 * DELTA,
        max_retries=3,
        backoff_base=DELTA / 2,
    )
    harness = ServiceHarness(
        "split",
        2.0,
        2.0,
        DELTA,
        faults=schedule,
        retry=retry,
        adaptive=True,
        seed=SEED,
        sample_interval=50.0,
        autoscaler=AutoscalerConfig(
            interval=500.0,
            window=2_000.0,
            cmin_floor=2.0,
            mode="shadow",
        ),
    )
    harness.source.stage_workload(workload)
    # run_epochs raises SimulationError from the epoch audit the moment
    # any request goes missing, so a conservation leak is localized to
    # the 1000-virtual-second epoch that caused it.
    result = harness.run_epochs(epoch=EPOCH, horizon=HORIZON)

    assert len(result.audits) == int(HORIZON / EPOCH)
    assert all(outstanding >= 0 for _, outstanding in result.audits)
    assert result.audits[-1][1] == 0
    assert not result.violations

    # Identity-level conservation across the whole run, on top of the
    # per-epoch count audits.
    assert result.conservation is not None and result.conservation.ok
    terminal = (
        result.ledger["completed"]
        + result.ledger["dropped"]
        + result.ledger["shed"]
    )
    assert terminal == len(workload)

    # The service rides out every fault: once the schedule clears, the
    # guaranteed class is fully restored.
    assert result.q1_compliance_after(schedule.last_clear) == 1.0

    # The monitoring planes kept up for the whole horizon.
    assert len(result.autoscaler_decisions) == int(HORIZON / 500.0)
    assert result.samples
