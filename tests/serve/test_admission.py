"""AdmissionService: live decisions must match the offline authorities.

Two differentials, matching the service's two granularities:

* per request — the predict-then-verify replay must agree with the
  stack's own classifier in both count and work admission modes;
* per client — onboarding decisions must match the offline
  :class:`repro.core.admission.AdmissionController` decision-for-
  decision on any candidate prefix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.admission import AdmissionController
from repro.core.capacity import CapacityPlanner
from repro.core.sla import GraduatedSLA
from repro.core.workload import Workload
from repro.exceptions import AdmissionError, ConfigurationError
from repro.serve import AdmissionService, ServiceHarness, Verdict
from repro.traces.synthetic import poisson_workload

CMIN, DELTA_C, DELTA = 4.0, 2.0, 0.5

SLA = GraduatedSLA([(0.95, 0.05), (0.99, 0.5)])


def _candidates(count: int = 8) -> list[Workload]:
    """Deterministic candidate clients at varied intensities."""
    return [
        poisson_workload(rate, duration=8.0, seed=40 + i)
        for i, rate in enumerate(
            np.linspace(2.0, 30.0, count)
        )
    ]


@pytest.fixture(scope="module")
def bursty():
    base = poisson_workload(6.0, duration=10.0, seed=21).arrivals
    storms = np.concatenate([np.full(6, t) for t in (1.5, 4.0, 7.5)])
    return Workload(np.sort(np.concatenate([base, storms])), name="adm")


class TestPerRequestDifferential:
    def test_count_mode_predictions_never_contradict_the_classifier(
        self, bursty
    ):
        served = ServiceHarness("split", CMIN, DELTA_C, DELTA).replay(
            bursty, chunks=3
        )
        assert not served.violations
        assert served.decisions["admit"] > 0
        assert served.decisions["demote"] > 0

    def test_work_mode_predictions_never_contradict_the_classifier(
        self, bursty
    ):
        rng = np.random.default_rng(5)
        sized = Workload(
            bursty.arrivals.copy(),
            name="adm-sized",
            sizes=rng.choice([0.25, 1.0, 3.0], size=len(bursty)),
        )
        harness = ServiceHarness(
            "split", CMIN, DELTA_C, DELTA, admission="work"
        )
        assert harness.classifier.mode == "work"
        served = harness.replay(sized, chunks=3)
        assert not served.violations
        assert served.decisions["admit"] > 0
        assert served.decisions["demote"] > 0

    def test_decide_is_read_only(self, bursty):
        from repro.core.request import Request

        harness = ServiceHarness("split", CMIN, DELTA_C, DELTA)
        clf = harness.classifier
        probe = Request(arrival=0.0, index=0)
        before = (clf.len_q1, clf.n_primary, clf.n_overflow)
        for _ in range(5):
            decision = harness.admission_service.decide(probe)
        assert decision.verdict is Verdict.ADMIT
        assert (clf.len_q1, clf.n_primary, clf.n_overflow) == before

    def test_classifier_free_policy_passes(self):
        from repro.core.request import Request

        service = AdmissionService(classifier=None)
        decision = service.decide(Request(arrival=0.0, index=0))
        assert decision.verdict is Verdict.PASS
        assert decision.serves
        assert service.decided[Verdict.PASS] == 1

    def test_decision_carries_the_state_it_saw(self, bursty):
        seen = []
        harness = ServiceHarness("split", CMIN, DELTA_C, DELTA)
        original = harness.admission_service.decide

        def spy(request):
            decision = original(request)
            seen.append(decision)
            return decision

        harness.admission_service.decide = spy
        harness.replay(bursty)
        limit = harness.classifier.limit
        for decision in seen:
            assert decision.limit == limit
            assert 0 <= decision.len_q1 <= limit
            if decision.verdict is Verdict.DEMOTE:
                assert decision.len_q1 == limit


class TestClientDifferential:
    @pytest.mark.parametrize("worst_case", [False, True])
    @pytest.mark.parametrize("headroom", [0.0, 0.2])
    def test_matches_offline_controller_decision_for_decision(
        self, worst_case, headroom
    ):
        capacity = 60.0
        offline = AdmissionController(
            server_capacity=capacity, worst_case=worst_case, headroom=headroom
        )
        live = AdmissionService(
            server_capacity=capacity, worst_case=worst_case, headroom=headroom
        )
        verdicts = []
        for workload in _candidates():
            offline_client = offline.try_admit(workload, SLA)
            live_client = live.admit_client(workload, SLA)
            assert (offline_client is None) == (live_client is None)
            if live_client is not None:
                assert live_client.planned_capacity == pytest.approx(
                    offline_client.planned_capacity, abs=0.0
                )
            assert live.committed == offline.committed
            assert live.available == offline.available
            verdicts.append(live_client is not None)
        # The prefix must be non-trivial: some admitted, some refused.
        assert any(verdicts) and not all(verdicts)

    def test_required_capacity_matches_offline(self):
        offline = AdmissionController(server_capacity=100.0)
        live = AdmissionService(server_capacity=100.0)
        for workload in _candidates(4):
            assert live.required_capacity(workload, SLA) == pytest.approx(
                offline.required_capacity(workload, SLA), abs=0.0
            )

    def test_device_depth_plans_against_delta_eff(self):
        workload = _candidates(1)[0]
        shallow = AdmissionService(server_capacity=100.0)
        deep = AdmissionService(server_capacity=100.0, device_depth=8)
        base = shallow.required_capacity(workload, SLA)
        corrected = deep.required_capacity(workload, SLA)
        # The queue's share of the deadline must be budgeted: a depth-k
        # device can only demand more capacity, never less.
        assert corrected >= base
        expected = max(
            CapacityPlanner(workload, tier.delta, device_depth=8).min_capacity(
                tier.fraction
            )
            for tier in SLA
        )
        assert corrected == pytest.approx(expected, abs=0.0)

    def test_release_frees_the_committed_capacity(self):
        live = AdmissionService(server_capacity=30.0)
        workload = _candidates(1)[0]
        client = live.admit_client(workload, SLA)
        assert client is not None
        committed = live.committed
        assert committed > 0
        live.release_client(workload.name)
        assert live.committed == 0.0
        with pytest.raises(AdmissionError, match="no onboarded client"):
            live.release_client(workload.name)

    def test_unarmed_client_half_raises(self):
        service = AdmissionService()
        with pytest.raises(ConfigurationError, match="unarmed"):
            _ = service.available

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            AdmissionService(server_capacity=0.0)
        with pytest.raises(ConfigurationError, match="headroom"):
            AdmissionService(server_capacity=10.0, headroom=1.0)
