"""ServiceHarness: the online plane must equal the offline simulator."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.check.differential import _scalar_columns
from repro.core.request import QoSClass, Request
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.faults import run_resilient
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import random_schedule
from repro.obs.registry import MetricsRegistry
from repro.serve import (
    Node,
    PlacementPlanner,
    ServiceHarness,
    StagedSource,
)
from repro.sim.engine import Simulator
from repro.sim.source import ClosedLoopSource
from repro.traces.synthetic import poisson_workload

CMIN, DELTA_C, DELTA = 4.0, 2.0, 0.5


@pytest.fixture(scope="module")
def bursty():
    base = poisson_workload(6.0, duration=12.0, seed=7).arrivals
    storms = np.concatenate([np.full(8, t) for t in (2.0, 5.0, 9.0)])
    return Workload(
        np.sort(np.concatenate([base, storms])), name="serve-bursty"
    )


@pytest.fixture(scope="module")
def sized(bursty):
    rng = np.random.default_rng(11)
    sizes = rng.choice([0.5, 1.0, 4.0], size=len(bursty))
    return Workload(bursty.arrivals.copy(), name="serve-sized", sizes=sizes)


class TestReplayParity:
    @pytest.mark.parametrize(
        "policy", ["fcfs", "split", "miser", "wf2q", "edf", "splitfarm"]
    )
    def test_bit_identical_to_scalar_engine(self, bursty, policy):
        resp, adm, ledger, misses = _scalar_columns(
            bursty, policy, CMIN, DELTA_C, DELTA
        )
        harness = ServiceHarness(policy, CMIN, DELTA_C, DELTA)
        served = harness.replay(bursty, chunks=5)
        assert not served.violations
        assert not served.rejected
        # Exact equality, not approximate: serve == simulate, bit for bit.
        assert np.array_equal(served.responses, resp)
        assert np.array_equal(served.admitted, adm)
        assert dict(served.ledger) == dict(ledger)
        assert served.primary_misses == misses
        assert served.conservation is not None and served.conservation.ok

    def test_chunking_does_not_change_the_run(self, bursty):
        one = ServiceHarness("split", CMIN, DELTA_C, DELTA).replay(
            bursty, chunks=1
        )
        many = ServiceHarness("split", CMIN, DELTA_C, DELTA).replay(
            bursty, chunks=7
        )
        assert np.array_equal(one.responses, many.responses)
        assert np.array_equal(one.admitted, many.admitted)
        assert one.ledger == many.ledger
        # Only the audit trail differs: one boundary audit per chunk edge.
        assert len(many.audits) == len(one.audits) + 6

    def test_sized_demands_are_parity_safe(self, sized):
        resp, adm, ledger, misses = _scalar_columns(
            sized, "splitfarm", CMIN, DELTA_C, DELTA
        )
        served = ServiceHarness("splitfarm", CMIN, DELTA_C, DELTA).replay(
            sized, chunks=3
        )
        assert np.array_equal(served.responses, resp)
        assert np.array_equal(served.admitted, adm)
        assert served.primary_misses == misses

    def test_decision_tallies_match_the_admitted_ledger(self, bursty):
        served = ServiceHarness("split", CMIN, DELTA_C, DELTA).replay(bursty)
        assert served.decisions["admit"] == int(served.admitted.sum())
        assert served.decisions["demote"] == len(bursty) - int(
            served.admitted.sum()
        )
        assert served.decisions.get("reject", 0) == 0

    def test_classifier_free_policy_passes_everything(self, bursty):
        served = ServiceHarness("fcfs", CMIN, DELTA_C, DELTA).replay(bursty)
        assert served.decisions["pass"] == len(bursty)
        assert not served.admitted.any()


class TestStagedSource:
    def _source(self):
        sim = Simulator()
        delivered = []

        class Sink:
            def on_arrival(self, request):
                delivered.append(request)

        return sim, StagedSource(sim, Sink()), delivered

    def test_out_of_order_staging_rejected(self):
        _, source, _ = self._source()
        source.stage(2.0)
        with pytest.raises(ConfigurationError, match="precedes"):
            source.stage(1.0)
        with pytest.raises(ConfigurationError, match="positive"):
            source.stage(3.0, size=0.0)

    def test_delivery_matches_workload_source_semantics(self):
        sim, source, delivered = self._source()
        source.stage(0.5)
        source.stage(0.5)
        source.stage(1.25, size=3.0)
        assert source.horizon == 1.25
        source.start()
        sim.run()
        assert [r.arrival for r in delivered] == [0.5, 0.5, 1.25]
        assert [r.index for r in delivered] == [0, 1, 2]
        assert delivered[2].service_demand == 3.0
        assert source.exhausted

    def test_staging_after_drain_rearms(self):
        sim, source, delivered = self._source()
        source.stage(1.0)
        source.start()
        sim.run()
        assert len(delivered) == 1 and source.exhausted
        source.stage(5.0)
        assert not source.exhausted
        sim.run()
        assert len(delivered) == 2 and sim.now == 5.0

    def test_past_arrival_fires_now_not_in_history(self):
        sim, source, delivered = self._source()
        source.stage(3.0)
        source.start()
        sim.run()
        # Stage an arrival timestamped in the simulator's past: it is
        # delivered immediately, never by rewinding the clock.
        source.stage(3.0)
        sim.run()
        assert len(delivered) == 2
        assert sim.now == 3.0

    def test_staging_during_the_run(self):
        staged = {"done": False}

        def grow(request):
            if not staged["done"]:
                staged["done"] = True
                harness.source.stage(request.arrival + 2.0)

        harness = ServiceHarness(
            "split", CMIN, DELTA_C, DELTA, on_request=grow
        )
        harness.source.stage(1.0)
        result = harness.run()
        assert result.ledger["completed"] == 2
        assert [r.arrival for r in harness.source.requests] == [1.0, 3.0]


class TestAuditsAndDriving:
    def test_every_epoch_is_audited(self, bursty):
        harness = ServiceHarness("split", CMIN, DELTA_C, DELTA)
        served = harness.replay(bursty, chunks=6)
        assert len(served.audits) == 6  # 5 boundaries + the final audit
        times = [t for t, _ in served.audits]
        assert times == sorted(times)
        assert all(outstanding >= 0 for _, outstanding in served.audits)
        assert served.audits[-1][1] == 0

    def test_run_epochs_is_chunked_run(self, bursty):
        harness = ServiceHarness("split", CMIN, DELTA_C, DELTA)
        harness.source.stage_workload(bursty)
        served = harness.run_epochs(epoch=2.0, horizon=12.0)
        assert len(served.audits) == 6

    def test_bad_driving_parameters(self, bursty):
        harness = ServiceHarness("split", CMIN, DELTA_C, DELTA)
        with pytest.raises(ConfigurationError, match="chunks"):
            harness.run(chunks=0)
        with pytest.raises(ConfigurationError, match="epoch"):
            harness.run_epochs(epoch=0.0, horizon=10.0)

    def test_sampler_records_probes(self, bursty):
        harness = ServiceHarness(
            "split", CMIN, DELTA_C, DELTA, sample_interval=1.0
        )
        served = harness.replay(bursty)
        assert served.samples, "periodic sampling produced no records"

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError, match="required"):
            ServiceHarness("split", None, DELTA_C, DELTA)
        with pytest.raises(ConfigurationError, match="bad configuration"):
            ServiceHarness("split", -1.0, DELTA_C, DELTA)
        with pytest.raises(ConfigurationError, match="unknown policy"):
            ServiceHarness("bogus", CMIN, DELTA_C, DELTA)

    def test_serve_metrics_counters(self, bursty):
        registry = MetricsRegistry()
        harness = ServiceHarness(
            "split", CMIN, DELTA_C, DELTA, metrics=registry
        )
        harness.replay(bursty)
        assert registry.value("serve.ingested") == len(bursty)
        assert registry.value("serve.delivered") == len(bursty)
        assert registry.value("serve.rejected") == 0
        assert registry.value("serve.violations") == 0
        assert registry.value("serve.admission.admit") > 0


class TestRejectPath:
    def test_overload_rejections_never_enter_the_stack(self):
        # A zero-gap storm against a tiny static window: the classifier
        # demotes past maxQ1 and the saturated window turns demote into
        # reject.  Rejected requests must stay out of every ledger.
        storm = Workload(np.zeros(40), name="storm")
        harness = ServiceHarness(
            "split",
            2.0,
            1.0,
            DELTA,
            aqm="static",
            reject_on_overload=True,
        )
        served = harness.replay(storm)
        assert served.rejected
        assert served.decisions["reject"] == len(served.rejected)
        assert not served.violations
        terminal = (
            served.ledger["completed"]
            + served.ledger["dropped"]
            + served.ledger["shed"]
        )
        assert terminal + len(served.rejected) == len(storm)
        assert math.isnan(
            served.responses[served.rejected[0].index]
        )


class TestPlacement:
    def test_zero_latency_placement_is_the_identity(self, bursty):
        plan = PlacementPlanner([Node("local", 100.0)]).plan(
            CMIN, DELTA_C, DELTA
        )
        placed = ServiceHarness("split", placement=plan).replay(bursty)
        plain = ServiceHarness("split", CMIN, DELTA_C, DELTA).replay(bursty)
        assert placed.effective_delta == DELTA
        assert np.array_equal(placed.responses, plain.responses)
        assert np.array_equal(placed.admitted, plain.admitted)

    def test_latency_charge_tightens_the_admission_bound(self, bursty):
        nodes = [Node("far", 100.0, latency=0.2)]
        plan = PlacementPlanner(nodes).plan(CMIN, DELTA_C, DELTA)
        harness = ServiceHarness("split", placement=plan)
        assert harness.effective_delta == pytest.approx(DELTA - 0.2)
        assert harness.classifier.limit == math.floor(
            CMIN * (DELTA - 0.2) + 1e-9
        )
        served = harness.replay(bursty)
        # The result reports both deadlines: the SLA delta and the
        # residue the stack actually enforced.
        assert served.delta == DELTA
        assert served.effective_delta == pytest.approx(DELTA - 0.2)

    def test_latency_eating_the_budget_is_rejected(self):
        # The planner never emits such a plan; a hand-built one with no
        # deadline residue must be refused at harness construction.
        from repro.serve import PlacementPlan

        node = Node("far", 100.0, latency=0.5)
        hostile = PlacementPlan(
            q1_node=node,
            q2_node=node,
            cmin=CMIN,
            delta_c=DELTA_C,
            delta=0.5,
            effective_delta=0.0,
        )
        with pytest.raises(ConfigurationError, match="deadline budget"):
            ServiceHarness("split", placement=hostile)


class TestFaultMode:
    def test_fault_replay_matches_run_resilient(self, bursty):
        schedule = random_schedule(5, horizon=12.0, units=2)
        retry = RetryPolicy(
            timeout_q1=10 * DELTA,
            timeout_q2=40 * DELTA,
            max_retries=3,
            backoff_base=DELTA / 2,
        )
        offline = run_resilient(
            bursty,
            "split",
            CMIN,
            DELTA_C,
            DELTA,
            schedule=schedule,
            retry=retry,
            adaptive=True,
            seed=5,
        )
        harness = ServiceHarness(
            "split",
            CMIN,
            DELTA_C,
            DELTA,
            faults=schedule,
            retry=retry,
            adaptive=True,
            seed=5,
        )
        served = harness.replay(bursty, chunks=4)
        assert not served.violations
        assert served.ledger["completed"] == len(offline.completed)
        assert served.ledger["dropped"] == len(offline.dropped)
        assert served.ledger["shed"] == len(offline.shed)
        assert served.primary_misses == offline.primary_misses
        assert served.final_limit == offline.final_limit
        assert np.array_equal(
            np.sort([r.response_time for r in served.completed]),
            np.sort([r.response_time for r in offline.completed]),
        )
        post = schedule.last_clear
        offline_q1 = offline.q1_compliance_after(post)
        serve_q1 = served.q1_compliance_after(post)
        assert (
            math.isnan(offline_q1)
            and math.isnan(serve_q1)
            or offline_q1 == serve_q1
        )

    def test_adaptive_needs_a_classifier(self):
        with pytest.raises(ConfigurationError, match="adapt"):
            ServiceHarness("fcfs", CMIN, DELTA_C, DELTA, adaptive=True)
        with pytest.raises(ConfigurationError, match="splitfarm"):
            ServiceHarness("splitfarm", CMIN, DELTA_C, DELTA, adaptive=True)


class TestClosedLoopSink:
    def test_population_flows_through_the_admission_gate(self):
        harness = ServiceHarness("split", CMIN, DELTA_C, DELTA)
        source = ClosedLoopSource(
            harness.sim,
            harness,
            n_users=4,
            think_time=0.4,
            horizon=10.0,
            seed=3,
        )
        source.start()
        harness.sim.run()
        assert source.requests, "closed-loop population never submitted"
        assert len(harness.delivered) == len(source.requests)
        assert not harness.violations
        decided = harness.admission_service.decided
        assert sum(n for n in decided.values()) == len(source.requests)
        # The defining closed-loop property survives the gate: each
        # user's next arrival waits on its previous completion.
        by_user: dict = {}
        for request in source.requests:
            by_user.setdefault(request.client_id, []).append(request)
        for requests in by_user.values():
            for prev, nxt in zip(requests, requests[1:]):
                assert prev.completion is not None
                assert nxt.arrival >= prev.completion

    def test_completion_hooks_reach_the_stack(self, bursty):
        harness = ServiceHarness("split", CMIN, DELTA_C, DELTA)
        seen: list[Request] = []
        harness.add_completion_hook(seen.append)
        harness.replay(bursty)
        assert len(seen) == len(bursty)
        assert all(r.qos_class is not None or True for r in seen)
        assert all(r.completion is not None for r in seen)
        assert any(r.qos_class is QoSClass.PRIMARY for r in seen)
