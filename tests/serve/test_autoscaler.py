"""Autoscaler properties: the provisioning loop must be safe to close.

Hypothesis (ci-derandomized via ``tests/conftest.py``) certifies the
three safety properties the module docstring promises:

* re-provisioning is *monotone* in the observed window at worst-case
  fraction (more load never recommends less capacity);
* recommendations never drop below the ``Cmin`` floor;
* the trip/clear hysteresis never oscillates on a constant trace.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.request import Request
from repro.exceptions import ConfigurationError
from repro.serve import Autoscaler, AutoscalerConfig, ServiceHarness
from repro.traces.synthetic import poisson_workload

DELTA = 0.5

#: Millisecond-grid arrival instants (exact enough for stable replans).
arrival_lists = st.lists(
    st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False).map(
        lambda t: round(t * 1000.0) / 1000.0
    ),
    min_size=1,
    max_size=40,
)


def _scaler(**overrides) -> Autoscaler:
    config = AutoscalerConfig(
        interval=1.0,
        window=1e6,
        cmin_floor=overrides.pop("cmin_floor", 0.01),
        fraction=overrides.pop("fraction", 1.0),
        deadband=overrides.pop("deadband", 0.05),
        trip_epochs=overrides.pop("trip_epochs", 2),
        mode=overrides.pop("mode", "active"),
    )
    return Autoscaler(None, DELTA, config=config, **overrides)


def _observe(scaler: Autoscaler, arrivals) -> None:
    for i, arrival in enumerate(sorted(arrivals)):
        scaler.observe(Request(arrival=float(arrival), index=i))


class TestRecommendationProperties:
    @given(base=arrival_lists, extra=arrival_lists)
    def test_monotone_in_window_load(self, base, extra):
        light = _scaler()
        heavy = _scaler()
        _observe(light, base)
        _observe(heavy, base + extra)
        # At fraction=1.0 a superset of arrivals can only need more
        # capacity: the recommendation is monotone in the window.
        assert heavy.recommend(60.0) >= light.recommend(60.0)

    @given(
        arrivals=arrival_lists,
        floor=st.floats(0.5, 20.0, allow_nan=False, allow_infinity=False),
    )
    def test_never_below_the_cmin_floor(self, arrivals, floor):
        scaler = _scaler(cmin_floor=floor)
        assert scaler.recommend(60.0) == floor  # empty window -> floor
        _observe(scaler, arrivals)
        assert scaler.recommend(60.0) >= floor

    @given(
        arrivals=arrival_lists,
        deadband=st.floats(0.0, 0.2, allow_nan=False, allow_infinity=False),
        trip_epochs=st.integers(1, 3),
    )
    def test_hysteresis_never_oscillates_on_a_constant_trace(
        self, arrivals, deadband, trip_epochs
    ):
        scaler = _scaler(deadband=deadband, trip_epochs=trip_epochs)
        _observe(scaler, arrivals)
        for epoch in range(1, 16):
            scaler.tick(float(epoch))
        provisions = [d.provisioned for d in scaler.decisions]
        transitions = sum(
            1 for a, b in zip(provisions, provisions[1:]) if a != b
        )
        # A constant window may move the provision once (floor -> plan);
        # after that the loop must hold steady forever.
        assert transitions <= 1
        assert scaler.actuations <= 1
        if scaler.actuations:
            assert provisions[-1] == scaler.decisions[-1].recommended


class TestHysteresisMechanics:
    def test_trip_count_delays_actuation(self):
        scaler = _scaler(trip_epochs=3)
        _observe(scaler, np.zeros(30))  # a storm far above the floor
        first, second, third = (scaler.tick(float(t)) for t in (1, 2, 3))
        assert [first.actuated, second.actuated, third.actuated] == [
            False,
            False,
            True,
        ]
        assert first.provisioned == scaler.config.cmin_floor
        assert third.provisioned == third.recommended

    def test_in_band_recommendations_clear_the_streak(self):
        scaler = _scaler(trip_epochs=2, deadband=10.0, cmin_floor=10.0)
        _observe(scaler, np.zeros(30))
        for epoch in range(1, 6):
            decision = scaler.tick(float(epoch))
            assert not decision.actuated  # a huge deadband absorbs all
        assert scaler.actuations == 0

    def test_off_mode_never_actuates(self):
        scaler = _scaler(mode="off")
        _observe(scaler, np.zeros(50))
        for epoch in range(1, 8):
            scaler.tick(float(epoch))
        assert scaler.actuations == 0
        assert scaler.provisioned == scaler.config.cmin_floor

    def test_eviction_shrinks_the_window(self):
        scaler = Autoscaler(
            None,
            DELTA,
            config=AutoscalerConfig(
                interval=1.0, window=5.0, cmin_floor=0.01
            ),
        )
        _observe(scaler, [0.0, 1.0, 2.0])
        workload = scaler.window_workload(now=5.5)
        assert workload is not None and len(workload) == 2
        assert scaler.window_workload(now=100.0) is None


class TestActiveMode:
    def test_actuation_reprovisions_the_live_classifier(self):
        workload = poisson_workload(40.0, duration=20.0, seed=9)
        harness = ServiceHarness(
            "split",
            2.0,
            2.0,
            DELTA,
            autoscaler=AutoscalerConfig(
                interval=1.0,
                window=10.0,
                cmin_floor=2.0,
                trip_epochs=2,
                mode="active",
            ),
        )
        assert harness.classifier.limit == math.floor(2.0 * DELTA + 1e-9)
        harness.replay(workload)
        scaler = harness.autoscaler
        assert scaler.actuations >= 1
        assert scaler.provisioned > 2.0
        # The live admission bound moved with the provision.
        assert harness.classifier.limit == math.floor(
            scaler.provisioned * DELTA + 1e-9
        )

    def test_shadow_mode_never_touches_the_classifier(self):
        workload = poisson_workload(40.0, duration=20.0, seed=9)
        harness = ServiceHarness(
            "split",
            2.0,
            2.0,
            DELTA,
            autoscaler=AutoscalerConfig(
                interval=1.0,
                window=10.0,
                cmin_floor=2.0,
                trip_epochs=2,
                mode="shadow",
            ),
        )
        limit = harness.classifier.limit
        harness.replay(workload)
        assert harness.autoscaler.actuations >= 1  # it *would* scale
        assert harness.classifier.limit == limit  # but touched nothing

    def test_active_mode_without_classifier_is_rejected(self):
        with pytest.raises(ConfigurationError, match="shadow"):
            ServiceHarness(
                "fcfs",
                2.0,
                2.0,
                DELTA,
                autoscaler=AutoscalerConfig(mode="active"),
            )


class TestDigitalTwin:
    def test_empty_window_short_circuits(self):
        scaler = _scaler()
        verdict = scaler.what_if(10.0, now=0.0)
        assert verdict == {
            "requests": 0,
            "admitted": 0,
            "primary_misses": 0,
            "q1_compliance": 1.0,
            "mean_response": 0.0,
        }

    def test_ample_capacity_admits_everything(self):
        scaler = _scaler()
        _observe(scaler, poisson_workload(5.0, duration=10.0, seed=3).arrivals)
        observed = len(scaler._window)
        verdict = scaler.what_if(1000.0, now=10.0)
        assert verdict["requests"] == observed
        assert verdict["admitted"] == observed
        assert verdict["q1_compliance"] == 1.0
        assert verdict["primary_misses"] == 0

    def test_capacity_moves_the_twin_verdict(self):
        scaler = _scaler()
        _observe(scaler, np.repeat(np.arange(10.0), 8))
        starved = scaler.what_if(2.0, now=10.0)
        provisioned = scaler.what_if(50.0, now=10.0)
        assert provisioned["admitted"] > starved["admitted"]
        assert provisioned["mean_response"] < starved["mean_response"]
        with pytest.raises(ConfigurationError, match="capacity"):
            scaler.what_if(0.0, now=10.0)


class TestConfigValidation:
    @pytest.mark.parametrize(
        ("field", "value", "match"),
        [
            ("interval", 0.0, "interval"),
            ("window", -1.0, "interval and window"),
            ("cmin_floor", 0.0, "cmin_floor"),
            ("fraction", 1.5, "fraction"),
            ("deadband", -0.1, "deadband"),
            ("trip_epochs", 0, "trip_epochs"),
            ("mode", "chaotic", "mode"),
        ],
    )
    def test_bad_config_rejected(self, field, value, match):
        with pytest.raises(ConfigurationError, match=match):
            AutoscalerConfig(**{field: value})

    def test_bad_scaler_parameters(self):
        with pytest.raises(ConfigurationError, match="delta"):
            Autoscaler(None, 0.0)
        with pytest.raises(ConfigurationError, match="delta_c"):
            Autoscaler(None, DELTA, delta_c=-1.0)
