"""IngestServer: the JSON-lines front door, with and without sockets."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import IngestServer, ServiceHarness

CMIN, DELTA_C, DELTA = 4.0, 2.0, 0.5


def _harness() -> ServiceHarness:
    return ServiceHarness("split", CMIN, DELTA_C, DELTA)


class TestProtocol:
    @pytest.mark.parametrize(
        ("line", "error"),
        [
            ("", "empty line"),
            ("   ", "empty line"),
            ("{not json", "bad JSON"),
            ("[1, 2]", "JSON object"),
            ('{"arrival": 1.0, "qos": "gold"}', "unknown fields"),
            ('{"arrival": "soon"}', "arrival must be a number"),
            ('{"size": "big"}', "size must be a number"),
            ('{"size": -2.0}', "positive"),
        ],
    )
    def test_malformed_lines_never_raise(self, line, error):
        server = IngestServer(_harness())
        response = server.handle_line(line)
        assert response["ok"] is False
        assert error in response["error"]
        assert server.malformed == 1
        assert server.accepted == 0

    def test_accepted_lines_stage_in_order(self):
        harness = _harness()
        server = IngestServer(harness)
        first = server.handle_line('{"arrival": 1.5}')
        second = server.handle_line('{"arrival": 3.0, "size": 2.5}')
        assert first == {"ok": True, "index": 0, "arrival": 1.5}
        assert second == {"ok": True, "index": 1, "arrival": 3.0}
        assert server.accepted == 2
        result = harness.run()
        assert result.ledger["completed"] == 2
        assert harness.source.requests[1].service_demand == 2.5

    def test_out_of_order_submissions_are_clamped_forward(self):
        server = IngestServer(_harness())
        server.submit(arrival=5.0)
        stale = server.submit(arrival=1.0)
        assert stale["ok"] is True
        assert stale["arrival"] == 5.0  # history cannot be rewritten

    def test_unstamped_submission_uses_the_clock(self):
        ticks = iter([2.5, 7.25])
        server = IngestServer(_harness(), clock=lambda: next(ticks))
        assert server.submit()["arrival"] == 2.5
        assert server.submit()["arrival"] == 7.25

    def test_clock_defaults_to_virtual_time(self):
        harness = _harness()
        server = IngestServer(harness)
        server.submit(arrival=2.0)
        harness.run()
        assert harness.sim.now >= 2.0
        # Post-run submissions stamp at (clamped) virtual now.
        response = server.submit(arrival=0.0)
        assert response["arrival"] == harness.sim.now


class TestSocketEndpoint:
    def test_tcp_round_trip(self):
        harness = _harness()
        server = IngestServer(harness)
        lines = [
            b'{"arrival": 1.0}\n',
            b"not json\n",
            b'{"arrival": 2.0, "size": 2.5}\n',
        ]

        async def drive():
            host, port = await server.serve()
            reader, writer = await asyncio.open_connection(host, port)
            for line in lines:
                writer.write(line)
            await writer.drain()
            replies = [
                json.loads(await reader.readline()) for _ in range(len(lines))
            ]
            writer.close()
            await writer.wait_closed()
            await server.close()
            return replies

        replies = asyncio.run(drive())
        assert replies[0] == {"ok": True, "index": 0, "arrival": 1.0}
        assert replies[1]["ok"] is False
        assert replies[2] == {"ok": True, "index": 1, "arrival": 2.0}
        assert server.accepted == 2
        assert server.malformed == 1
        # The staged requests then run under virtual time as usual.
        result = harness.run()
        assert result.ledger["completed"] == 2

    def test_close_is_idempotent(self):
        server = IngestServer(_harness())

        async def drive():
            await server.serve()
            await server.close()
            await server.close()

        asyncio.run(drive())
