"""PlacementPlanner: latency is charged against the deadline budget."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import CapacityError, ConfigurationError
from repro.serve import Node, PlacementPlanner, local_node


def _farm():
    return [
        Node("near", 50.0, latency=0.005),
        Node("far", 200.0, latency=0.030),
        Node("tiny", 2.0, latency=0.001),
    ]


class TestNodes:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="name"):
            Node("", 10.0)
        with pytest.raises(ConfigurationError, match="capacity"):
            Node("n", 0.0)
        with pytest.raises(ConfigurationError, match="latency"):
            Node("n", 10.0, latency=-0.1)

    def test_local_node_is_the_identity_host(self):
        node = local_node()
        assert node.latency == 0.0
        assert node.capacity == float("inf")


class TestPlan:
    def test_identity_on_a_zero_latency_node(self):
        plan = PlacementPlanner([local_node(100.0)]).plan(20.0, 5.0, 0.05)
        assert plan.effective_delta == 0.05
        assert plan.colocated
        assert plan.latency_tax == 0.0
        assert plan.admission_limit == math.floor(20.0 * 0.05 + 1e-9)

    def test_q1_takes_the_lowest_latency_feasible_node(self):
        plan = PlacementPlanner(_farm()).plan(20.0, 5.0, 0.05)
        # "tiny" is nearest but cannot host cmin=20; "near" wins.
        assert plan.q1_node.name == "near"
        assert plan.effective_delta == pytest.approx(0.045)
        assert plan.latency_tax == pytest.approx(0.1)
        # The latency charge tightens the admission bound.
        assert plan.admission_limit < math.floor(20.0 * 0.05 + 1e-9)

    def test_q2_prefers_a_different_node(self):
        plan = PlacementPlanner(_farm()).plan(20.0, 5.0, 0.05)
        assert plan.q2_node.name != plan.q1_node.name
        assert not plan.colocated

    def test_q2_falls_back_to_colocation(self):
        nodes = [Node("solo", 100.0, latency=0.001)]
        plan = PlacementPlanner(nodes).plan(20.0, 5.0, 0.05)
        assert plan.colocated

    def test_zero_overflow_colocates_trivially(self):
        plan = PlacementPlanner(_farm()).plan(20.0, 0.0, 0.05)
        assert plan.q2_node.name == plan.q1_node.name

    def test_capacity_tiebreak_on_equal_latency(self):
        nodes = [Node("a", 30.0, 0.01), Node("b", 80.0, 0.01)]
        plan = PlacementPlanner(nodes).plan(20.0, 5.0, 0.05)
        assert plan.q1_node.name == "b"

    def test_infeasible_farms_raise(self):
        with pytest.raises(CapacityError, match="no node can guarantee"):
            PlacementPlanner([Node("slow", 1.0, 0.001)]).plan(20.0, 5.0, 0.05)
        with pytest.raises(CapacityError, match="no node can guarantee"):
            # Capacity is there, but every round trip eats the budget.
            PlacementPlanner([Node("wan", 100.0, 0.1)]).plan(20.0, 5.0, 0.05)
        with pytest.raises(CapacityError, match="overflow"):
            PlacementPlanner([Node("snug", 20.0, 0.001)]).plan(
                20.0, 5.0, 0.05
            )

    def test_parameter_validation(self):
        planner = PlacementPlanner(_farm())
        with pytest.raises(ConfigurationError, match="bad plan"):
            planner.plan(0.0, 5.0, 0.05)
        with pytest.raises(ConfigurationError, match="at least one node"):
            PlacementPlanner([])
        with pytest.raises(ConfigurationError, match="duplicate"):
            PlacementPlanner([Node("x", 1.0), Node("x", 2.0)])

    def test_describe_mentions_both_partitions(self):
        plan = PlacementPlanner(_farm()).plan(20.0, 5.0, 0.05)
        text = plan.describe()
        assert "Q1 -> near" in text
        assert "Q2 ->" in text
        assert "maxQ1" in text


class TestPlanFarm:
    def test_slices_spread_over_the_farm(self):
        plans = PlacementPlanner(_farm()).plan_farm(
            60.0, 5.0, 0.05, shares=3
        )
        assert len(plans) == 3
        assert all(p.delta == 0.05 for p in plans)
        # Every slice sees its own node's latency charge.
        for plan in plans:
            assert plan.effective_delta == pytest.approx(
                0.05 - plan.q1_node.latency
            )
        # One overflow host shared by all slices.
        assert len({p.q2_node.name for p in plans}) == 1

    def test_exhausted_farm_raises(self):
        with pytest.raises(CapacityError, match="exhausted"):
            PlacementPlanner(_farm()).plan_farm(400.0, 5.0, 0.05, shares=4)

    def test_no_residual_overflow_capacity_raises(self):
        nodes = [Node("only", 20.0, 0.001)]
        with pytest.raises(CapacityError, match="residual"):
            PlacementPlanner(nodes).plan_farm(20.0, 5.0, 0.05, shares=1)

    def test_share_validation(self):
        with pytest.raises(ConfigurationError, match="shares"):
            PlacementPlanner(_farm()).plan_farm(20.0, 5.0, 0.05, shares=0)
