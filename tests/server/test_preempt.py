"""Tests for server preemption plumbing (preempt / remaining / resume)."""

import numpy as np
import pytest

from repro.core.request import Request
from repro.core.workload import Workload
from repro.exceptions import SchedulerError
from repro.faults.harness import run_resilient
from repro.faults.schedule import Crash, FaultSchedule
from repro.sched.registry import make_scheduler
from repro.server.constant_rate import constant_rate_server
from repro.server.driver import DeviceDriver
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource


class TestServerPreempt:
    def test_preempt_idle_rejected(self):
        sim = Simulator()
        server = constant_rate_server(sim, 10.0)
        with pytest.raises(SchedulerError, match="no request in service"):
            server.preempt()

    def test_remaining_seconds(self):
        sim = Simulator()
        server = constant_rate_server(sim, 2.0)  # 0.5 s per unit request
        assert server.remaining_seconds() == 0.0
        server.dispatch(Request(arrival=0.0))
        assert server.remaining_seconds() == pytest.approx(0.5)

    def test_preempt_returns_request_with_remainder(self):
        sim = Simulator()
        server = constant_rate_server(sim, 2.0)
        request = Request(arrival=0.0, service_demand=4.0)  # 2.0 s service
        server.dispatch(request)
        sim.run(until=0.5)
        preempted = server.preempt()
        assert preempted is request
        assert not server.busy
        assert request.remaining_service == pytest.approx(1.5)
        assert request.dispatch is None

    def test_resume_serves_exact_remainder(self):
        sim = Simulator()
        server = constant_rate_server(sim, 2.0)
        done = []
        server.on_completion = done.append
        request = Request(arrival=0.0, service_demand=4.0)
        server.dispatch(request)
        sim.run(until=0.5)
        server.preempt()
        # Re-dispatch at t=1.0: completion must land at 1.0 + 1.5.
        sim.schedule(1.0, lambda: server.dispatch(request))
        sim.run()
        assert done == [request]
        assert request.completion == pytest.approx(2.5)
        assert request.remaining_service is None

    def test_busy_time_refunded_on_preempt(self):
        sim = Simulator()
        server = constant_rate_server(sim, 2.0)
        request = Request(arrival=0.0, service_demand=4.0)
        server.dispatch(request)
        sim.run(until=0.5)
        server.preempt()
        # Only the 0.5 s actually served counts toward utilization.
        assert server.utilization() == pytest.approx(1.0)
        sim.run(until=1.0)
        assert server.utilization() == pytest.approx(0.5)


class TestDriverPreempt:
    def _run(self, arrivals, sizes, rate=2.0):
        sim = Simulator()
        scheduler = make_scheduler("srpt", rate / 2, rate / 2, 0.5)
        server = constant_rate_server(sim, rate, name="srpt")
        driver = DeviceDriver(sim, server, scheduler)
        workload = Workload(
            np.asarray(arrivals, dtype=float),
            name="t",
            sizes=np.asarray(sizes, dtype=float),
        )
        WorkloadSource(sim, workload, driver).start()
        sim.run()
        return driver

    def test_small_arrival_preempts_large(self):
        driver = self._run([0.0, 0.5], [8.0, 1.0])
        assert driver.preemptions == 1
        by_index = {r.index: r for r in driver.completed}
        # Small finishes at 1.0 (preempts at 0.5, serves 0.5 s); the
        # large job's remainder resumes and ends at total work / rate.
        assert by_index[1].completion == pytest.approx(1.0)
        assert by_index[0].completion == pytest.approx(4.5)

    def test_fcfs_driver_never_preempts(self):
        sim = Simulator()
        scheduler = make_scheduler("fcfs", 1.0, 1.0, 0.5)
        server = constant_rate_server(sim, 2.0, name="fcfs")
        driver = DeviceDriver(sim, server, scheduler)
        workload = Workload(
            np.array([0.0, 0.5]), name="t", sizes=np.array([8.0, 1.0])
        )
        WorkloadSource(sim, workload, driver).start()
        sim.run()
        assert driver.preemptions == 0
        by_index = {r.index: r for r in driver.completed}
        assert by_index[1].completion > by_index[0].completion

    def test_preemption_composes_with_faults(self):
        # Crash mid-run with requeue: conservation must hold and the
        # preemption path must not lose the in-flight request.
        arrivals = np.sort(np.random.default_rng(11).uniform(0, 8, 30))
        sizes = np.random.default_rng(12).choice([0.5, 1.0, 8.0], size=30)
        workload = Workload(arrivals, name="t", sizes=sizes)
        schedule = FaultSchedule([Crash(start=2.0, duration=1.0)])
        result = run_resilient(
            workload, "srpt", 3.0, 3.0, 0.5, schedule=schedule, seed=5
        )
        assert result.conservation is not None
        assert result.conservation.ok
