"""Tests for the multi-unit server farm."""

import pytest

from repro.core.workload import Workload
from repro.exceptions import ConfigurationError, SchedulerError
from repro.sched.fcfs import FCFSScheduler
from repro.server.constant_rate import ConstantRateModel
from repro.server.driver import DeviceDriver
from repro.server.farm import ServerFarm, constant_rate_farm
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource


def run_farm(workload, total_capacity, units):
    sim = Simulator()
    farm = constant_rate_farm(sim, total_capacity, units)
    driver = DeviceDriver(sim, farm, FCFSScheduler())
    WorkloadSource(sim, workload, driver).start()
    sim.run()
    return driver, farm


class TestConstruction:
    def test_needs_units(self):
        with pytest.raises(ConfigurationError):
            ServerFarm(Simulator(), [])
        with pytest.raises(ConfigurationError):
            constant_rate_farm(Simulator(), 100.0, 0)

    def test_size(self):
        farm = constant_rate_farm(Simulator(), 100.0, 4)
        assert farm.size == 4


class TestDispatch:
    def test_busy_only_when_all_units_taken(self):
        sim = Simulator()
        farm = ServerFarm(sim, [ConstantRateModel(10.0)] * 2)
        from repro.core.request import Request

        farm.dispatch(Request(arrival=0.0))
        assert not farm.busy
        assert farm.in_service == 1
        farm.dispatch(Request(arrival=0.0))
        assert farm.busy
        with pytest.raises(SchedulerError, match="all units busy"):
            farm.dispatch(Request(arrival=0.0))

    def test_parallelism_speeds_up_batch(self):
        """A batch of k requests completes k times faster on k equal-rate
        units than queued behind one unit of the same per-unit rate."""
        batch = Workload([0.0] * 4)
        single, _ = run_farm(batch, 10.0, 1)  # one 10-IOPS unit
        quad, _ = run_farm(batch, 40.0, 4)  # four 10-IOPS units
        assert max(r.completion for r in quad.completed) == pytest.approx(0.1)
        assert max(r.completion for r in single.completed) == pytest.approx(0.4)

    def test_all_requests_served(self, bursty_workload):
        driver, farm = run_farm(bursty_workload, 60.0, 3)
        assert len(driver.completed) == len(bursty_workload)
        assert farm.completed == len(bursty_workload)

    def test_farm_beats_equivalent_single_unit_on_bursts(self, bursty_workload):
        """At equal aggregate capacity, a farm is never better than the
        single fast server (service times are k times longer per unit) —
        the classic M/D/k vs M/D/1 comparison; sanity-check direction."""
        single, _ = run_farm(bursty_workload, 60.0, 1)
        farm, _ = run_farm(bursty_workload, 60.0, 4)
        assert farm.overall.stats.mean >= single.overall.stats.mean * 0.99

    def test_utilization_reported(self, uniform_workload):
        driver, farm = run_farm(uniform_workload, 40.0, 2)
        assert 0.0 < farm.utilization() <= 1.0


class TestShapingOnFarm:
    def test_classifier_with_aggregate_capacity(self, bursty_workload):
        """RTT classification against the aggregate farm capacity keeps
        primary response times near delta (one extra quantum of
        discretization allowed)."""
        from repro.core.request import QoSClass
        from repro.sched.registry import make_scheduler

        sim = Simulator()
        cmin, delta = 40.0, 0.1
        farm = constant_rate_farm(sim, cmin + 10.0, 4)
        driver = DeviceDriver(sim, farm, make_scheduler("miser", cmin, 10.0, delta))
        WorkloadSource(sim, bursty_workload, driver).start()
        sim.run()
        primary = driver.by_class[QoSClass.PRIMARY]
        assert len(primary) > 0
        per_unit_quantum = 4.0 / (cmin + 10.0)
        assert primary.stats.max <= delta + 2 * per_unit_quantum
