"""Tests for the SSD (GC-pause) service model."""

import numpy as np
import pytest

from repro.core.request import IOKind, QoSClass, Request
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.sched.registry import make_scheduler
from repro.server.base import Server
from repro.server.driver import DeviceDriver
from repro.server.ssd import SSDModel, SSDParameters
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource


def read_req(t=0.0):
    return Request(arrival=t, kind=IOKind.READ)


def write_req(t=0.0):
    return Request(arrival=t, kind=IOKind.WRITE)


class TestParameters:
    def test_defaults_valid(self):
        assert SSDParameters().gc_threshold > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"read_latency": 0.0},
            {"gc_threshold": 0},
            {"gc_pause": -1.0},
            {"jitter": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SSDParameters(**kwargs)


class TestServiceTimes:
    def test_reads_fast(self):
        model = SSDModel(SSDParameters(jitter=0.0), seed=0)
        assert model.service_time(read_req()) == pytest.approx(100e-6)

    def test_writes_slower_than_reads(self):
        model = SSDModel(SSDParameters(jitter=0.0), seed=0)
        assert model.service_time(write_req()) > model.service_time(read_req())

    def test_gc_fires_on_write_pressure(self):
        params = SSDParameters(jitter=0.0, gc_threshold=10, gc_pause=5e-3)
        model = SSDModel(params, seed=0)
        times = [model.service_time(write_req()) for _ in range(25)]
        stalls = [t for t in times if t > 1e-3]
        assert len(stalls) == 2  # at writes 10 and 20
        assert model.gc_events == 2

    def test_reads_never_trigger_gc(self):
        model = SSDModel(SSDParameters(jitter=0.0, gc_threshold=5), seed=0)
        for _ in range(100):
            model.service_time(read_req())
        assert model.gc_events == 0

    def test_jitter_bounded(self):
        params = SSDParameters(jitter=0.3, gc_pause=0.0)
        model = SSDModel(params, seed=1)
        samples = [model.service_time(read_req()) for _ in range(500)]
        assert min(samples) >= params.read_latency * 0.7 - 1e-12
        assert max(samples) <= params.read_latency * 1.3 + 1e-12

    def test_capacity_helpers(self):
        params = SSDParameters(jitter=0.0)
        model = SSDModel(params, seed=0)
        assert model.nominal_read_capacity() == pytest.approx(1e4)
        assert model.effective_write_capacity() < 1.0 / params.write_latency


class TestShapingOnSSD:
    def test_gc_tail_hits_fcfs_harder_than_shaped_q1(self):
        """A write-heavy stream on the SSD: GC stalls create service-side
        bursts.  The shaped guaranteed class keeps a better deadline
        profile than unshaped FCFS on the same device."""
        gen = np.random.default_rng(5)
        # ~2600 IOPS of writes for 10 s against ~3.1k effective capacity.
        workload = Workload(np.sort(gen.uniform(0.0, 10.0, 26000)))
        params = SSDParameters(jitter=0.1, gc_threshold=300, gc_pause=20e-3)
        delta = 0.01

        def run(policy):
            sim = Simulator()
            model = SSDModel(params, seed=2)
            driver = DeviceDriver(
                sim,
                Server(sim, model, name="ssd"),
                make_scheduler(policy, 2400.0, 400.0, delta),
            )
            source = WorkloadSource(sim, workload, driver)
            source.on_request = lambda r: setattr(r, "kind", IOKind.WRITE)
            source.start()
            sim.run()
            return driver

        fcfs = run("fcfs")
        miser = run("miser")
        primary = miser.by_class[QoSClass.PRIMARY]
        assert len(primary) > 0.5 * len(workload)
        assert primary.fraction_within(delta) > fcfs.fraction_within(delta)
