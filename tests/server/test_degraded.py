"""Failure-injection tests: brownouts, latency spikes, and recovery."""

import numpy as np
import pytest

from repro.analysis.monitor import ComplianceMonitor
from repro.core.request import QoSClass, Request
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.sched.registry import make_scheduler
from repro.server.base import Server
from repro.server.constant_rate import ConstantRateModel
from repro.server.degraded import Brownout, DegradedModel, FlakyModel
from repro.server.driver import DeviceDriver
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource


class TestBrownout:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Brownout(start=2.0, end=1.0, factor=2.0)
        with pytest.raises(ConfigurationError):
            Brownout(start=0.0, end=1.0, factor=1.0)

    def test_negative_start_rejected(self):
        """The simulation clock starts at 0; a window reaching back
        before that used to silently inflate degraded_fraction."""
        with pytest.raises(ConfigurationError, match="t=0"):
            Brownout(start=-1.0, end=1.0, factor=2.0)

    def test_active_window(self):
        b = Brownout(start=1.0, end=2.0, factor=2.0)
        assert not b.active(0.5)
        assert b.active(1.0)
        assert b.active(1.999)
        assert not b.active(2.0)


class TestDegradedModel:
    def _model(self, sim, factor=3.0):
        return DegradedModel(
            sim,
            ConstantRateModel(10.0),
            [Brownout(start=1.0, end=2.0, factor=factor)],
        )

    def test_needs_windows(self):
        with pytest.raises(ConfigurationError):
            DegradedModel(Simulator(), ConstantRateModel(10.0), [])

    def test_overlap_rejected(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            DegradedModel(
                Simulator(),
                ConstantRateModel(10.0),
                [Brownout(0.0, 2.0, 2.0), Brownout(1.0, 3.0, 2.0)],
            )

    def test_inflation_only_inside_window(self):
        sim = Simulator()
        model = self._model(sim)
        request = Request(arrival=0.0)
        assert model.service_time(request) == pytest.approx(0.1)
        sim.schedule(1.5, lambda: None)
        sim.run()
        assert model.service_time(request) == pytest.approx(0.3)

    def test_degraded_fraction(self):
        sim = Simulator()
        model = self._model(sim)
        assert model.degraded_fraction(10.0) == pytest.approx(0.1)
        assert model.degraded_fraction(0.0) == 0.0

    def test_degraded_fraction_clips_to_horizon(self):
        """A window straddling the horizon counts only its inside part;
        one entirely beyond it counts nothing."""
        sim = Simulator()
        model = DegradedModel(
            sim,
            ConstantRateModel(10.0),
            [Brownout(1.0, 3.0, 2.0), Brownout(5.0, 7.0, 2.0)],
        )
        assert model.degraded_fraction(2.0) == pytest.approx(0.5)
        assert model.degraded_fraction(4.0) == pytest.approx(0.5)
        assert model.degraded_fraction(6.0) == pytest.approx(0.5)
        assert model.degraded_fraction(10.0) == pytest.approx(0.4)


class TestFlakyModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlakyModel(ConstantRateModel(10.0), 2.0, 5.0)
        with pytest.raises(ConfigurationError):
            FlakyModel(ConstantRateModel(10.0), 0.1, 1.0)

    def test_spike_rate(self):
        model = FlakyModel(ConstantRateModel(10.0), 0.25, 10.0, seed=0)
        request = Request(arrival=0.0)
        samples = [model.service_time(request) for _ in range(2000)]
        spikes = sum(1 for s in samples if s > 0.5)
        assert spikes == model.spikes_injected
        assert 0.18 < spikes / 2000 < 0.32

    def test_never_spikes_at_zero_probability(self):
        model = FlakyModel(ConstantRateModel(10.0), 0.0, 10.0, seed=0)
        request = Request(arrival=0.0)
        assert all(
            model.service_time(request) == pytest.approx(0.1) for _ in range(100)
        )

    def test_seed_reproducibility(self):
        """Same seed -> same spike sequence; different seeds -> different
        (the old shared-literal seeding collapsed every model onto one
        stream)."""
        request = Request(arrival=0.0)

        def draws(seed):
            model = FlakyModel(ConstantRateModel(10.0), 0.3, 10.0, seed=seed)
            return [model.service_time(request) for _ in range(200)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)
        # None is an alias for the default deterministic stream.
        assert draws(None) == draws(0)


class TestShapingUnderBrownout:
    @pytest.fixture(scope="class")
    def run(self):
        """Steady 40-IOPS workload on a 60-IOPS server that browns out to
        a third of its speed during [8, 12)."""
        gen = np.random.default_rng(4)
        workload = Workload(np.sort(gen.uniform(0.0, 30.0, 1200)), name="steady")

        def simulate(policy):
            sim = Simulator()
            model = DegradedModel(
                sim, ConstantRateModel(60.0), [Brownout(8.0, 12.0, 3.0)]
            )
            driver = DeviceDriver(
                sim,
                Server(sim, model, name="brownout"),
                make_scheduler(policy, 50.0, 10.0, 0.2),
            )
            WorkloadSource(sim, workload, driver).start()
            sim.run()
            return driver

        return simulate

    def test_all_served_despite_brownout(self, run):
        driver = run("miser")
        assert len(driver.completed) == 1200

    def test_violations_confined_to_brownout(self, run):
        """Compliance collapses only in (and right after) the injected
        window; the system recovers on its own."""
        driver = run("miser")
        monitor = ComplianceMonitor(delta=0.2, target=0.8, window=1.0)
        monitor.record_requests(driver.completed)
        violations = monitor.violations()
        assert violations, "a 3x brownout must cause some violations"
        # All violated windows start within the brownout or its drain.
        for window in violations:
            assert 7.0 <= window.start <= 16.0, window
        # Steady state before and after is compliant.
        assert monitor.availability() > 0.7

    def test_shaped_recovers_like_fcfs(self, run):
        """Work conservation: the shaped policy drains the brownout
        backlog in the same total time as FCFS."""
        miser = run("miser")
        fcfs = run("fcfs")
        assert max(r.completion for r in miser.completed) == pytest.approx(
            max(r.completion for r in fcfs.completed)
        )

    def test_primary_protected_relative_to_overflow(self, run):
        """During the brownout the guaranteed class is still served ahead
        of the overflow class."""
        driver = run("miser")
        primary = [
            r.response_time
            for r in driver.completed
            if r.qos_class is QoSClass.PRIMARY and 8.0 <= r.arrival < 12.0
        ]
        overflow = [
            r.response_time
            for r in driver.completed
            if r.qos_class is QoSClass.OVERFLOW and 8.0 <= r.arrival < 12.0
        ]
        if primary and overflow:
            assert np.mean(primary) < np.mean(overflow)
