"""AQM in-flight windows: controllers, driver integration, run-API knobs.

Three layers under test:

* the window policies themselves (:mod:`repro.server.aqm`) — sizing,
  floors, the CoDel squeeze/grow schedule, AIMD;
* the :class:`~repro.server.driver.DeviceDriver` integration — slot
  accounting across every exit path, gating, conservation;
* the run-layer knobs — ``RunConfig(aqm=...)`` validation, snapshots on
  results, the batch-engine gate, and the headline bufferbloat claim
  (an unbounded device queue destroys ``Q1``; CoDel recovers it).
"""

import numpy as np
import pytest

from repro.core.request import Request
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.sched.fcfs import FCFSScheduler
from repro.server.aqm import (
    AQM_POLICIES,
    DEFAULT_INITIAL_DEPTH,
    DEFAULT_STATIC_DEPTH,
    REGISTRY,
    AdaptiveWindow,
    CoDelWindow,
    InflightWindow,
    make_window,
)
from repro.server.constant_rate import constant_rate_server
from repro.server.driver import DeviceDriver
from repro.shaping import RunConfig, run_policy
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource


def observe(window, sojourn, at, exit=True):
    """Push one synthetic request through the window with ``sojourn``."""
    request = Request(arrival=max(0.0, at - sojourn))
    window.on_enter(request, at - sojourn)
    window.on_dispatch(request, at)
    if exit:
        window.on_exit(request, at)
    return request


class TestInflightWindow:
    def test_depth_validation(self):
        with pytest.raises(ConfigurationError, match="depth"):
            InflightWindow(depth=0)

    def test_unbounded_always_has_slot(self):
        window = InflightWindow(depth=None)
        assert window.depth is None
        for i in range(100):
            assert window.has_slot()
            window.on_enter(Request(arrival=0.0, index=i), 0.0)
        assert window.occupancy == 100 and window.max_occupancy == 100

    def test_static_depth_gates(self):
        window = InflightWindow(depth=3)
        residents = []
        while window.has_slot():
            r = Request(arrival=0.0, index=len(residents))
            window.on_enter(r, 0.0)
            residents.append(r)
        assert len(residents) == 3
        window.on_exit(residents[0], 1.0)
        assert window.has_slot()

    def test_floor_accumulates(self):
        window = InflightWindow(depth=2)
        window.raise_floor(4)
        assert window.depth == 4
        window.raise_floor(3)
        assert window.depth == 7
        with pytest.raises(ConfigurationError, match="concurrency"):
            window.raise_floor(0)

    def test_floor_caps_squeezing(self):
        window = CoDelWindow(target=0.1, interval=0.2, initial=8)
        window.raise_floor(3)
        for i in range(200):
            observe(window, sojourn=1.0, at=i * 0.05)
        assert window.depth == 3  # squeezed, but never below the floor

    def test_exit_is_idempotent(self):
        """A double exit (timeout abort racing a completion) reports
        ``False`` and never drives occupancy negative."""
        window = InflightWindow(depth=4)
        request = Request(arrival=0.0)
        window.on_enter(request, 0.0)
        assert window.on_exit(request, 1.0) is True
        assert window.on_exit(request, 1.0) is False
        assert window.occupancy == 0

    def test_sojourn_accounting(self):
        window = InflightWindow(depth=None)
        observe(window, sojourn=0.5, at=1.0)
        observe(window, sojourn=1.5, at=2.0)
        assert window.last_sojourn == pytest.approx(1.5)
        assert window.mean_sojourn == pytest.approx(1.0)
        assert window.dispatches == 2

    def test_snapshot_fields(self):
        window = InflightWindow(depth=2)
        observe(window, sojourn=0.25, at=1.0)
        snap = window.snapshot()
        assert snap["policy"] == "static"
        assert snap["depth"] == 2
        assert snap["dispatches"] == 1
        assert snap["mean_sojourn"] == pytest.approx(0.25)
        assert {"occupancy", "max_occupancy", "squeezes", "grows", "gated"} <= set(snap)


class TestCoDelWindow:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="target"):
            CoDelWindow(target=0.0, interval=1.0)
        with pytest.raises(ConfigurationError, match="min_depth"):
            CoDelWindow(target=0.1, interval=1.0, initial=2, min_depth=4)

    def test_no_squeeze_before_full_interval(self):
        window = CoDelWindow(target=0.1, interval=1.0, initial=32)
        observe(window, sojourn=0.5, at=0.0)
        observe(window, sojourn=0.5, at=0.9)
        assert window.squeezes == 0 and window.depth == 32

    def test_squeezes_after_full_interval_above_target(self):
        window = CoDelWindow(target=0.1, interval=1.0, initial=32)
        observe(window, sojourn=0.5, at=0.0)
        observe(window, sojourn=0.5, at=1.0)
        assert window.squeezes == 1 and window.depth < 32

    def test_squeeze_schedule_accelerates(self):
        """Sustained badness squeezes faster than once per interval —
        the ``interval / sqrt(n)`` MarkFirst cadence."""
        window = CoDelWindow(target=0.1, interval=1.0, initial=64, min_depth=1)
        horizon = 10.0
        t = 0.0
        while t <= horizon:
            observe(window, sojourn=0.5, at=t)
            t += 0.05
        assert window.squeezes > horizon / window.interval
        assert window.depth < 64

    def test_healthy_sojourn_leaves_squeezing(self):
        window = CoDelWindow(target=0.1, interval=1.0, initial=32)
        observe(window, sojourn=0.5, at=0.0)
        observe(window, sojourn=0.5, at=1.0)  # first squeeze
        depth = window.depth
        observe(window, sojourn=0.01, at=1.5)  # back below target
        observe(window, sojourn=0.01, at=3.0)
        assert window.depth == depth  # no further squeezes, no growth

    def test_growth_requires_saturation(self):
        """Healthy sojourn alone never inflates the window; healthy
        sojourn with occupancy pinned at the limit grows it."""
        window = CoDelWindow(target=0.1, interval=1.0, initial=4, max_depth=16)
        for i in range(50):  # healthy and idle: no growth
            observe(window, sojourn=0.01, at=i * 0.5)
        assert window.grows == 0 and window.depth == 4
        residents = [Request(arrival=0.0, index=i) for i in range(4)]
        for i, r in enumerate(residents):  # pin occupancy at the limit
            window.on_enter(r, 100.0 + i * 0.01)
        for i in range(50):
            observe(window, sojourn=0.01, at=100.0 + i * 0.5)
        assert window.grows > 0 and window.depth > 4
        assert window.depth <= 16

    def test_count_memory_on_reentry(self):
        """Re-entering the squeezing state shortly after leaving resumes
        the accelerated cadence instead of restarting from one."""
        window = CoDelWindow(target=0.1, interval=1.0, initial=64)
        t = 0.0
        while t <= 5.0:  # first squeezing episode
            observe(window, sojourn=0.5, at=t)
            t += 0.05
        count_before = window._squeeze_count
        observe(window, sojourn=0.01, at=t)  # leave squeezing
        observe(window, sojourn=0.5, at=t + 0.5)
        observe(window, sojourn=0.5, at=t + 1.5)  # re-enter
        assert window._squeeze_count == max(1, count_before - 2)


class TestAdaptiveWindow:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="decrease"):
            AdaptiveWindow(target=0.1, interval=1.0, decrease=1.5)
        with pytest.raises(ConfigurationError, match="increase"):
            AdaptiveWindow(target=0.1, interval=1.0, increase=0)

    def test_multiplicative_decrease_rate_limited(self):
        window = AdaptiveWindow(target=0.1, interval=1.0, initial=64, decrease=0.5)
        observe(window, sojourn=0.5, at=0.0)
        assert window.depth == 32
        observe(window, sojourn=0.5, at=0.5)  # within the interval: held
        assert window.depth == 32
        observe(window, sojourn=0.5, at=1.1)
        assert window.depth == 16

    def test_additive_increase_only_when_saturated(self):
        window = AdaptiveWindow(target=0.1, interval=1.0, initial=2, max_depth=8)
        for i in range(30):  # healthy but idle: no growth
            observe(window, sojourn=0.01, at=i * 0.5)
        assert window.depth == 2 and window.grows == 0
        for r in (Request(arrival=0.0, index=i) for i in range(2)):
            window.on_enter(r, 100.0)
        for i in range(30):
            observe(window, sojourn=0.01, at=100.0 + i * 0.5)
        assert window.depth > 2


class TestRegistryFactory:
    def test_policy_names(self):
        assert set(AQM_POLICIES) == {"unbounded", "static", "codel", "adaptive"}

    def test_none_means_no_window(self):
        assert make_window(None, 0.2) is None

    def test_factory_defaults(self):
        assert make_window("unbounded", 0.2).depth is None
        assert make_window("static", 0.2)._depth == DEFAULT_STATIC_DEPTH
        codel = make_window("codel", 0.2)
        assert isinstance(codel, CoDelWindow)
        assert codel.target == pytest.approx(0.1)
        assert codel.interval == pytest.approx(0.2)
        assert codel._depth == DEFAULT_INITIAL_DEPTH
        adaptive = make_window("adaptive", 0.2)
        assert isinstance(adaptive, AdaptiveWindow)
        assert adaptive.target == pytest.approx(0.1)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown aqm window policy"):
            make_window("red", 0.2)

    def test_delta_validated(self):
        with pytest.raises(ConfigurationError, match="delta"):
            make_window("codel", 0.0)

    def test_override_reaches_default_runs(self):
        """``REGISTRY.use`` (and ``REPRO_AQM``) arms a window even when
        the caller passed ``aqm=None`` — the switchboard idiom."""
        with REGISTRY.use("static"):
            window = make_window(None, 0.2)
        assert isinstance(window, InflightWindow) and window._depth == 4

    def test_env_variable_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_AQM", "codel")
        assert isinstance(make_window(None, 0.2), CoDelWindow)
        monkeypatch.setenv("REPRO_AQM", "none")
        assert make_window(None, 0.2) is None


# ---------------------------------------------------------------------------
# Driver integration
# ---------------------------------------------------------------------------


def run_windowed(workload, capacity, window):
    sim = Simulator()
    driver = DeviceDriver(
        sim,
        constant_rate_server(sim, capacity),
        FCFSScheduler(),
        window=window,
    )
    WorkloadSource(sim, workload, driver).start()
    sim.run()
    return driver


class TestDriverIntegration:
    def test_window_drains_and_conserves(self, bursty_workload):
        window = InflightWindow(depth=4)
        driver = run_windowed(bursty_workload, 50.0, window)
        assert len(driver.completed) == len(bursty_workload)
        assert window.occupancy == 0
        assert driver.fault_ledger() == {
            "completed": len(bursty_workload),
            "dropped": 0,
            "shed": 0,
            "window": 0,
        }
        assert window.dispatches == len(bursty_workload)

    def test_occupancy_respects_depth(self, bursty_workload):
        window = InflightWindow(depth=4)
        run_windowed(bursty_workload, 50.0, window)
        assert window.max_occupancy <= 4

    def test_backpressure_counted(self, bursty_workload):
        window = InflightWindow(depth=4)
        run_windowed(bursty_workload, 50.0, window)
        assert window.gated > 0  # bursts exceeded the window

    def test_ledger_shape_unchanged_without_window(self, uniform_workload):
        driver = run_windowed(uniform_workload, 50.0, None)
        assert driver.fault_ledger() == {
            "completed": len(uniform_workload),
            "dropped": 0,
            "shed": 0,
        }
        assert driver.window_snapshot() is None

    def test_fcfs_bitwise_equal_with_and_without_window(self, bursty_workload):
        """For FCFS any window size is order-preserving, so response
        times must match the unwindowed driver exactly."""
        plain = run_windowed(bursty_workload, 50.0, None)
        for window in (InflightWindow(depth=None), InflightWindow(depth=1)):
            windowed = run_windowed(bursty_workload, 50.0, window)
            assert list(windowed.overall.samples) == list(plain.overall.samples)

    def test_floor_raised_to_server_concurrency(self):
        from repro.server.constant_rate import ConstantRateModel
        from repro.server.farm import ServerFarm

        sim = Simulator()
        farm = ServerFarm(sim, [ConstantRateModel(10.0) for _ in range(3)])
        window = InflightWindow(depth=1)
        DeviceDriver(sim, farm, FCFSScheduler(), window=window)
        assert window.depth == 3  # never starves the farm's units


# ---------------------------------------------------------------------------
# Run-layer knobs
# ---------------------------------------------------------------------------

CMIN, DELTA_C, DELTA = 30.0, 10.0, 0.2


@pytest.fixture(scope="module")
def bloat_workload():
    """Steady trickle plus periodic bursts much deeper than any sane
    device queue — the bufferbloat regime."""
    gen = np.random.default_rng(7)
    horizon = 90.0
    steady = gen.uniform(0.0, horizon, 900)
    centers = np.linspace(5.0, horizon - 5.0, 9)
    bursts = np.concatenate([t + gen.uniform(0.0, 0.3, 150) for t in centers])
    return Workload(np.sort(np.concatenate([steady, bursts])), name="bloat")


class TestRunConfigAQM:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="aqm"):
            RunConfig(CMIN, DELTA_C, DELTA, aqm="bogus")

    def test_shared_requires_policy(self):
        with pytest.raises(ConfigurationError, match="aqm_shared"):
            RunConfig(CMIN, DELTA_C, DELTA, aqm_shared=True)

    def test_batch_engine_rejects_aqm(self, bloat_workload):
        with pytest.raises(ConfigurationError, match="AQM"):
            run_policy(
                bloat_workload,
                "fcfs",
                config=RunConfig(CMIN, DELTA_C, DELTA, engine="batch", aqm="static"),
            )

    def test_result_carries_snapshot(self, bloat_workload):
        result = run_policy(
            bloat_workload,
            "miser",
            config=RunConfig(CMIN, DELTA_C, DELTA, aqm="codel"),
        )
        assert result.aqm == "codel"
        assert result.window["policy"] == "codel"
        assert result.window["occupancy"] == 0  # drained

    def test_env_armed_window_surfaces_in_result(
        self, bloat_workload, monkeypatch
    ):
        """``REPRO_AQM`` with ``aqm=None`` must behave exactly like an
        explicit ``aqm=``: the result reports the resolved policy, the
        snapshot is surfaced, and the batch fast path steps aside (a
        batch run would silently bypass the window)."""
        monkeypatch.setenv("REPRO_AQM", "static")
        config = RunConfig(CMIN, DELTA_C, DELTA)
        result = run_policy(bloat_workload, "fcfs", config=config)
        assert result.engine == "scalar"
        assert result.aqm == "static"
        assert result.window["policy"] == "static"
        assert result.window["occupancy"] == 0
        monkeypatch.setenv("REPRO_AQM", "none")
        dormant = run_policy(bloat_workload, "fcfs", config=config)
        assert dormant.aqm is None and dormant.window is None
        assert result.window["dispatches"] >= len(bloat_workload)

    def test_no_window_no_snapshot(self, bloat_workload):
        result = run_policy(
            bloat_workload, "miser", config=RunConfig(CMIN, DELTA_C, DELTA)
        )
        assert result.aqm is None and result.window is None

    def test_split_per_queue_windows(self, bloat_workload):
        result = run_policy(
            bloat_workload,
            "split",
            config=RunConfig(CMIN, DELTA_C, DELTA, aqm="static"),
        )
        assert set(result.window) == {"q1", "q2"}
        assert all(w["occupancy"] == 0 for w in result.window.values())

    def test_split_shared_window(self, bloat_workload):
        result = run_policy(
            bloat_workload,
            "split",
            config=RunConfig(CMIN, DELTA_C, DELTA, aqm="static", aqm_shared=True),
        )
        # One shared snapshot, floored at the sum of both servers.
        assert result.window["policy"] == "static"
        assert result.window["depth"] >= 2
        assert result.window["occupancy"] == 0

    def test_aqm_metrics_emitted(self, bloat_workload):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        run_policy(
            bloat_workload,
            "miser",
            config=RunConfig(
                CMIN, DELTA_C, DELTA, metrics=registry, aqm="codel"
            ),
        )
        for name in (
            "aqm.driver.depth",
            "aqm.driver.occupancy",
            "aqm.driver.sojourn",
            "aqm.driver.squeezes",
            "aqm.driver.grows",
            "aqm.driver.gated",
        ):
            assert registry.value(name) is not None
        assert registry.value("aqm.driver.squeezes") > 0
        assert registry.value("aqm.driver.gated") > 0

    def test_sampler_reconciles_with_device_queue(self, bloat_workload):
        from repro.obs.registry import MetricsRegistry
        from repro.obs.sampler import depth_reconciles

        result = run_policy(
            bloat_workload,
            "miser",
            config=RunConfig(
                CMIN,
                DELTA_C,
                DELTA,
                metrics=MetricsRegistry(),
                sample_interval=0.5,
                aqm="static",
            ),
        )
        records = result.telemetry.samples
        assert any(r.get("aqm_device_queued", 0) > 0 for r in records)
        assert depth_reconciles(records)


class TestBufferbloat:
    """The headline claim: an unbounded device queue converts the policy
    to FIFO and destroys ``Q1``; a managed window recovers it."""

    @pytest.fixture(scope="class")
    def results(self, bloat_workload):
        return {
            aqm: run_policy(
                bloat_workload,
                "fairqueue",
                config=RunConfig(CMIN, DELTA_C, DELTA, aqm=aqm),
            )
            for aqm in (None, "unbounded", "static", "codel", "adaptive")
        }

    def test_unbounded_queue_destroys_q1(self, results):
        baseline, bloated = results[None], results["unbounded"]
        assert bloated.primary_misses > 10 * max(1, baseline.primary_misses)
        # Bufferbloat also starves admission: slots stay occupied while
        # completions crawl through the FIFO device queue.
        assert len(bloated.primary) < 0.8 * len(results[None].primary)

    def test_managed_windows_recover(self, results):
        bloated = results["unbounded"].primary_misses
        for aqm in ("static", "codel", "adaptive"):
            assert results[aqm].primary_misses < bloated / 3, aqm

    def test_adaptive_controllers_squeezed(self, results):
        for aqm in ("codel", "adaptive"):
            snap = results[aqm].window
            assert snap["squeezes"] > 0
            assert snap["depth"] < DEFAULT_INITIAL_DEPTH
