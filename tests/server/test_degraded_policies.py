"""Every recombination policy against degraded and flaky servers.

The shaping guarantees are proved for a healthy constant-rate server;
these tests check the *mechanisms* stay sound when the substrate
under-delivers: every policy still serves every request (work
conservation), per-class accounting still balances, and Miser's slack
bookkeeping stays consistent while a brownout inflates service times
mid-run.
"""

import numpy as np
import pytest

from repro.core.request import QoSClass
from repro.core.slack import is_unconstrained
from repro.core.workload import Workload
from repro.sched.registry import (
    CLASSIFIER_FREE_POLICIES,
    SINGLE_SERVER_POLICIES,
    make_scheduler,
)
from repro.server.base import Server
from repro.server.constant_rate import ConstantRateModel
from repro.server.degraded import Brownout, DegradedModel, FlakyModel
from repro.server.driver import DeviceDriver
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource

CMIN, DELTA_C, DELTA = 50.0, 10.0, 0.2


@pytest.fixture(scope="module")
def workload():
    gen = np.random.default_rng(11)
    return Workload(np.sort(gen.uniform(0.0, 20.0, 800)), name="steady")


def _run(workload, policy, model_factory):
    sim = Simulator()
    scheduler = make_scheduler(policy, CMIN, DELTA_C, DELTA)
    server = Server(sim, model_factory(sim), name=policy)
    driver = DeviceDriver(sim, server, scheduler)
    source = WorkloadSource(sim, workload, driver)
    source.start()
    sim.run()
    return driver, source


def _degraded(sim):
    return DegradedModel(
        sim, ConstantRateModel(CMIN + DELTA_C), [Brownout(6.0, 9.0, 3.0)]
    )


def _flaky(sim):
    return FlakyModel(ConstantRateModel(CMIN + DELTA_C), 0.05, 8.0, seed=3)


@pytest.mark.parametrize("policy", SINGLE_SERVER_POLICIES)
@pytest.mark.parametrize("model_factory", [_degraded, _flaky], ids=["brownout", "flaky"])
class TestPoliciesUnderDegradation:
    def test_work_conserving(self, workload, policy, model_factory):
        """Degradation slows service but loses nothing."""
        driver, source = _run(workload, policy, model_factory)
        assert len(driver.completed) == len(workload)
        assert {id(r) for r in driver.completed} == {
            id(r) for r in source.requests
        }

    def test_class_accounting_balances(self, workload, policy, model_factory):
        """Per-class collectors partition the completions exactly."""
        driver, _ = _run(workload, policy, model_factory)
        by_class = sum(len(c) for c in driver.by_class.values())
        assert by_class == len(driver.overall) == len(workload)
        if policy not in CLASSIFIER_FREE_POLICIES:
            # Classifying policies put every request in Q1 or Q2.
            assert len(driver.by_class[QoSClass.UNCLASSIFIED]) == 0

    def test_admission_bound_respected(self, workload, policy, model_factory):
        """Degradation never lets Q1 admissions exceed the C·delta bound."""
        driver, _ = _run(workload, policy, model_factory)
        classifier = driver.classifier
        if classifier is None:
            pytest.skip(f"{policy} does not classify")
        assert classifier.len_q1 == 0  # all slots released at the end
        primary = len(driver.by_class[QoSClass.PRIMARY])
        assert primary > 0


class TestMiserSlackUnderInflation:
    def test_slack_consistency_mid_brownout(self, workload):
        """Sampled mid-run while a 3x brownout is active, Miser's minimum
        slack stays a consistent non-negative count of deferrable
        dispatches, and ends unconstrained (empty Q1)."""
        sim = Simulator()
        scheduler = make_scheduler("miser", CMIN, DELTA_C, DELTA)
        server = Server(sim, _degraded(sim), name="miser")
        driver = DeviceDriver(sim, server, scheduler)
        observed: list[int] = []

        def probe():
            slack = scheduler.min_slack
            if not is_unconstrained(slack):
                observed.append(slack)

        sim.every(0.05, probe, until=20.0)
        WorkloadSource(sim, workload, driver).start()
        sim.run()
        assert len(driver.completed) == len(workload)
        # Slack is a queue-position count: whenever Q1 was non-empty the
        # tracked minimum must be a sane machine-size integer >= 0.
        assert all(0 <= s < 10**6 for s in observed)
        assert is_unconstrained(scheduler.min_slack)

    def test_slack_dispatches_still_safe(self, workload):
        """Every slack dispatch (Q2 served ahead of queued Q1) during the
        brownout must still leave all Q1 requests completing."""
        driver, _ = _run(workload, "miser", _degraded)
        scheduler = driver.scheduler
        assert scheduler.slack_dispatches >= 0
        primary = driver.by_class[QoSClass.PRIMARY]
        assert len(primary) + len(driver.by_class[QoSClass.OVERFLOW]) == len(
            driver.completed
        )
