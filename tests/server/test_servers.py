"""Tests for server models (base, constant rate, disk)."""

import pytest

from repro.core.request import Request
from repro.exceptions import ConfigurationError, SchedulerError
from repro.server.base import Server
from repro.server.constant_rate import ConstantRateModel, constant_rate_server
from repro.server.disk import DiskModel, DiskParameters
from repro.sim.engine import Simulator


class TestConstantRateModel:
    def test_service_time(self):
        model = ConstantRateModel(100.0)
        assert model.service_time(Request(arrival=0.0)) == pytest.approx(0.01)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            ConstantRateModel(0.0)


class TestServer:
    def test_dispatch_completes_after_service_time(self):
        sim = Simulator()
        server = constant_rate_server(sim, 10.0)
        done = []
        server.on_completion = done.append
        request = Request(arrival=0.0)
        sim.schedule(1.0, lambda: server.dispatch(request))
        sim.run()
        assert done == [request]
        assert request.dispatch == 1.0
        assert request.completion == pytest.approx(1.1)

    def test_busy_flag_and_current(self):
        sim = Simulator()
        server = constant_rate_server(sim, 10.0)
        request = Request(arrival=0.0)
        assert not server.busy
        server.dispatch(request)
        assert server.busy
        assert server.current is request
        sim.run()
        assert not server.busy
        assert server.current is None

    def test_double_dispatch_rejected(self):
        sim = Simulator()
        server = constant_rate_server(sim, 10.0)
        server.dispatch(Request(arrival=0.0))
        with pytest.raises(SchedulerError, match="dispatch while serving"):
            server.dispatch(Request(arrival=0.0))

    def test_completed_counter(self):
        sim = Simulator()
        server = constant_rate_server(sim, 10.0)
        server.on_completion = lambda r: None
        for i in range(3):
            sim.schedule(i * 1.0, lambda: server.dispatch(Request(arrival=sim.now)))
        sim.run()
        assert server.completed == 3

    def test_utilization(self):
        sim = Simulator()
        server = constant_rate_server(sim, 10.0)  # 0.1 s per request
        server.dispatch(Request(arrival=0.0))
        sim.run()
        # Busy 0.1 s; horizon 1.0 s -> 10%.
        assert server.utilization(horizon=1.0) == pytest.approx(0.1)

    def test_utilization_zero_horizon(self):
        sim = Simulator()
        server = constant_rate_server(sim, 10.0)
        assert server.utilization() == 0.0


class TestDiskParameters:
    def test_defaults_valid(self):
        params = DiskParameters()
        assert params.rotation_time > 0

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            DiskParameters(total_blocks=0)

    def test_invalid_seek_range(self):
        with pytest.raises(ConfigurationError):
            DiskParameters(seek_min=2e-3, seek_max=1e-3)


class TestDiskModel:
    def test_service_time_positive_and_bounded(self):
        model = DiskModel(seed=0)
        p = model.params
        upper = (
            p.controller_overhead + p.seek_max + p.rotation_time + 1.0
        )
        for lba in (0, 10**6, 5 * 10**7, 0):
            t = model.service_time(Request(arrival=0.0, lba=lba, size=4096))
            assert 0 < t < upper

    def test_sequential_cheaper_than_random(self):
        sequential = DiskModel(seed=1)
        random_model = DiskModel(seed=1)
        blocks = sequential.params.blocks_per_track
        seq_total = sum(
            sequential.service_time(Request(arrival=0.0, lba=0, size=4096))
            for _ in range(200)
        )
        rng_lbas = [(i * 7919 * blocks) % sequential.params.total_blocks for i in range(200)]
        rand_total = sum(
            random_model.service_time(Request(arrival=0.0, lba=lba, size=4096))
            for lba in rng_lbas
        )
        assert seq_total < rand_total

    def test_mean_service_time_reasonable(self):
        model = DiskModel(seed=0)
        mean = model.mean_service_time()
        # A 15k-RPM-class drive: a few ms per random I/O.
        assert 0.002 < mean < 0.02
        assert model.nominal_capacity == pytest.approx(1.0 / mean)

    def test_deterministic_given_seed(self):
        a, b = DiskModel(seed=42), DiskModel(seed=42)
        for lba in (0, 999999, 12345):
            r = Request(arrival=0.0, lba=lba, size=8192)
            assert a.service_time(r) == b.service_time(r)

    def test_zero_size_uses_default(self):
        model = DiskModel(seed=0)
        t = model.service_time(Request(arrival=0.0, lba=0, size=0))
        assert t > 0

    def test_server_integration(self):
        sim = Simulator()
        server = Server(sim, DiskModel(seed=3), name="disk")
        done = []
        server.on_completion = done.append
        server.dispatch(Request(arrival=0.0, lba=12345, size=4096))
        sim.run()
        assert len(done) == 1
        assert done[0].completion > 0
