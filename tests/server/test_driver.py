"""Tests for the device driver and the Split topology."""

import numpy as np
import pytest

from repro.core.request import QoSClass
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.sched.fcfs import FCFSScheduler
from repro.server.cluster import SplitSystem
from repro.server.constant_rate import constant_rate_server
from repro.server.driver import DeviceDriver
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource


def run_fcfs(workload, capacity, record_rates=None):
    sim = Simulator()
    driver = DeviceDriver(
        sim,
        constant_rate_server(sim, capacity),
        FCFSScheduler(),
        record_rates=record_rates,
    )
    WorkloadSource(sim, workload, driver).start()
    sim.run()
    return driver


class TestDeviceDriver:
    def test_serves_everything(self, uniform_workload):
        driver = run_fcfs(uniform_workload, 50.0)
        assert len(driver.completed) == len(uniform_workload)

    def test_fcfs_order_preserved(self, uniform_workload):
        driver = run_fcfs(uniform_workload, 50.0)
        indices = [r.index for r in driver.completed]
        assert indices == sorted(indices)

    def test_response_times_recorded(self, uniform_workload):
        driver = run_fcfs(uniform_workload, 50.0)
        assert len(driver.overall) == len(uniform_workload)
        assert driver.overall.stats.min >= 1.0 / 50.0 - 1e-12

    def test_fraction_within(self, uniform_workload):
        driver = run_fcfs(uniform_workload, 1000.0)
        # Massive capacity: everything completes within ~1 ms.
        assert driver.fraction_within(0.01) == 1.0

    def test_unclassified_requests_counted_under_all(self, uniform_workload):
        driver = run_fcfs(uniform_workload, 50.0)
        assert len(driver.by_class[QoSClass.UNCLASSIFIED]) == len(uniform_workload)
        assert len(driver.by_class[QoSClass.PRIMARY]) == 0

    def test_rate_recording(self, uniform_workload):
        driver = run_fcfs(uniform_workload, 50.0, record_rates=1.0)
        starts, rates = driver.completion_rates.series()
        assert rates.sum() * 1.0 == pytest.approx(len(uniform_workload))

    def test_no_deadline_misses_without_classification(self, uniform_workload):
        driver = run_fcfs(uniform_workload, 50.0)
        assert driver.primary_deadline_misses() == 0


class TestSplitSystem:
    def _run(self, workload, cmin, delta_c, delta):
        sim = Simulator()
        system = SplitSystem(sim, cmin, delta_c, delta)
        WorkloadSource(sim, workload, system).start()
        sim.run()
        return system

    def test_requires_positive_overflow_capacity(self):
        with pytest.raises(ConfigurationError, match="positive"):
            SplitSystem(Simulator(), 10.0, 0.0, 0.1)

    def test_all_requests_served_once(self, bursty_workload):
        system = self._run(bursty_workload, 40.0, 10.0, 0.1)
        assert len(system.completed) == len(bursty_workload)

    def test_classes_routed_to_distinct_servers(self, bursty_workload):
        system = self._run(bursty_workload, 40.0, 10.0, 0.1)
        for r in system.primary_driver.completed:
            assert r.qos_class is QoSClass.PRIMARY
        for r in system.overflow_driver.completed:
            assert r.qos_class is QoSClass.OVERFLOW

    def test_primary_requests_meet_deadline(self, bursty_workload):
        """Q1 on a dedicated Cmin server must never miss (RTT guarantee)."""
        system = self._run(bursty_workload, 40.0, 10.0, 0.1)
        assert system.primary_deadline_misses() == 0

    def test_overflow_isolated_from_primary(self):
        """A huge burst diverted to Q2 must not delay later Q1 requests."""
        burst = Workload(np.concatenate([[0.0] * 50, np.arange(1, 21) * 0.5]))
        system = self._run(burst, 10.0, 1.0, 0.2)
        # Steady 2-IOPS tail arrivals all fit in Q1 and meet 200 ms.
        late = [r for r in system.primary_driver.completed if r.arrival >= 1.0]
        assert late, "steady tail should be admitted to Q1"
        assert all(r.met_deadline for r in late)

    def test_fraction_within_weighs_both_servers(self, bursty_workload):
        system = self._run(bursty_workload, 40.0, 10.0, 0.1)
        n = len(bursty_workload)
        manual = (
            sum(1 for r in system.completed if r.response_time <= 0.1 + 1e-12) / n
        )
        assert system.fraction_within(0.1) == pytest.approx(manual)

    def test_by_class_view(self, bursty_workload):
        system = self._run(bursty_workload, 40.0, 10.0, 0.1)
        by_class = system.by_class
        total = len(by_class[QoSClass.PRIMARY]) + len(by_class[QoSClass.OVERFLOW])
        assert total == len(bursty_workload)
