"""Shared-AQM drain hooks under splitfarm: one window, two farms.

With ``aqm_shared=True`` the small and large partitions of a
:class:`~repro.server.sizesplit.SizeSplitSystem` draw device slots from
*one* :class:`~repro.server.aqm.InflightWindow`.  A completion on either
side must therefore wake the *other* side's gated dispatch — the
cross-driver ``_on_window_drain`` path — or work wedges behind a window
that already has free slots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.workload import Workload
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import random_schedule
from repro.serve import ServiceHarness
from repro.server.sizesplit import SizeSplitSystem
from repro.sim.engine import Simulator

CMIN, DELTA_C, DELTA = 4.0, 2.0, 0.5


def _mixed_burst(n_small: int = 30, n_large: int = 12) -> Workload:
    """Zero-gap burst of small and large jobs, interleaved."""
    sizes = np.array(
        [1.0, 5.0] * min(n_small, n_large)
        + [1.0] * (n_small - min(n_small, n_large))
    )
    arrivals = np.zeros(sizes.size)
    return Workload(arrivals, name="mixed-burst", sizes=sizes)


class TestWindowWiring:
    def test_shared_mode_is_one_window_object(self):
        sim = Simulator()
        system = SizeSplitSystem(
            sim, CMIN, DELTA_C, DELTA, aqm="static", aqm_shared=True
        )
        assert system.small_driver.window is system.large_driver.window

    def test_partitioned_mode_keeps_windows_private(self):
        sim = Simulator()
        system = SizeSplitSystem(
            sim, CMIN, DELTA_C, DELTA, aqm="static", aqm_shared=False
        )
        assert system.small_driver.window is not None
        assert system.small_driver.window is not system.large_driver.window

    def test_both_drivers_hook_the_shared_drain(self):
        sim = Simulator()
        system = SizeSplitSystem(
            sim, CMIN, DELTA_C, DELTA, aqm="static", aqm_shared=True
        )
        hooks = system.small_driver.window._drain_hooks
        assert system.small_driver._on_window_drain in hooks
        assert system.large_driver._on_window_drain in hooks


class TestCrossDriverDrain:
    def test_gated_work_drains_via_peer_completions(self):
        harness = ServiceHarness(
            "splitfarm", CMIN, DELTA_C, DELTA, aqm="static", aqm_shared=True
        )
        system = harness.system
        window = system.small_driver.window
        drains = {"count": 0}
        window.add_drain_hook(lambda: drains.__setitem__("count", drains["count"] + 1))
        workload = _mixed_burst()
        result = harness.replay(workload, chunks=2)
        # The zero-gap burst must have saturated the shared window...
        snapshot = result.window
        assert snapshot["gated"] > 0
        assert snapshot["max_occupancy"] == snapshot["depth"]
        # ...and every later dispatch went through a drain wakeup.
        assert drains["count"] > 0
        # Nothing wedges: both partitions fully drain through the one
        # window and the end-of-run audit sees zero residue.
        assert result.ledger["completed"] == len(workload)
        assert snapshot["occupancy"] == 0
        assert result.audits[-1][1] == 0
        assert system.routed_small > 0 and system.routed_large > 0

    def test_shared_snapshot_shape_differs_from_partitioned(self):
        workload = _mixed_burst(12, 6)
        shared = ServiceHarness(
            "splitfarm", CMIN, DELTA_C, DELTA, aqm="static", aqm_shared=True
        ).replay(workload)
        split = ServiceHarness(
            "splitfarm", CMIN, DELTA_C, DELTA, aqm="static", aqm_shared=False
        ).replay(workload)
        assert "policy" in shared.window  # one flat snapshot
        assert set(split.window) == {"small", "large"}
        assert all(w["occupancy"] == 0 for w in split.window.values())

    def test_shared_floor_spans_both_farm_concurrencies(self):
        sim = Simulator()
        system = SizeSplitSystem(
            sim, CMIN, DELTA_C, DELTA, aqm="static", aqm_shared=True
        )
        private = SizeSplitSystem(
            Simulator(), CMIN, DELTA_C, DELTA, aqm="static", aqm_shared=False
        )
        # The shared window must never squeeze below the *sum* of the
        # two farms' concurrencies, while each private window floors at
        # its own farm only.
        assert (
            system.small_driver.window.depth
            >= private.small_driver.window.depth
        )

    @pytest.mark.parametrize("aqm_shared", [False, True])
    def test_chaos_splitfarm_with_aqm_conserves_requests(self, aqm_shared):
        rng = np.random.default_rng(23)
        arrivals = np.sort(rng.uniform(0.0, 20.0, 160))
        sizes = rng.choice([1.0, 5.0], size=arrivals.size)
        workload = Workload(arrivals, name="chaos-farm", sizes=sizes)
        schedule = random_schedule(31, horizon=20.0, units=2)
        retry = RetryPolicy(
            timeout_q1=10 * DELTA,
            timeout_q2=40 * DELTA,
            max_retries=3,
            backoff_base=DELTA / 2,
        )
        harness = ServiceHarness(
            "splitfarm",
            CMIN,
            DELTA_C,
            DELTA,
            aqm="static",
            aqm_shared=aqm_shared,
            faults=schedule,
            retry=retry,
            seed=31,
        )
        result = harness.replay(workload, chunks=4)
        assert not result.violations
        terminal = (
            result.ledger["completed"]
            + result.ledger["dropped"]
            + result.ledger["shed"]
        )
        assert terminal == len(workload)
        assert result.conservation is not None and result.conservation.ok
        assert result.audits[-1][1] == 0
