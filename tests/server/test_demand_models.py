"""Demand-aware service models: disk/SSD must scale by service_demand.

The regression this pins: both models used to ignore ``service_demand``
entirely, so an 8x request cost the same as a unit one.  The fix scales
the per-request work terms by demand while keeping unit-demand runs
bit-identical to the historical model (the golden corpus certifies the
same property end-to-end).
"""

import pytest

from repro.core.request import IOKind, Request
from repro.server.disk import DiskModel, DiskParameters
from repro.server.ssd import SSDModel, SSDParameters


def disk_request(demand=1.0, lba=0, size=4096):
    return Request(arrival=0.0, lba=lba, size=size, service_demand=demand)


class TestDiskDemand:
    PARAMS = DiskParameters(
        seek_min=1e-3,
        seek_max=1e-3,
        rotation_time=1e-12,  # effectively deterministic
        transfer_rate=1e6,
        controller_overhead=2e-3,
    )

    def test_unit_demand_bit_identical(self):
        a = DiskModel(self.PARAMS, seed=0)
        b = DiskModel(self.PARAMS, seed=0)
        for lba in (0, 10_000_000, 5_000):
            assert a.service_time(disk_request(1.0, lba=lba)) == b.service_time(
                Request(arrival=0.0, lba=lba, size=4096)
            )

    def test_demand_scales_seek_and_transfer(self):
        # Same seek distance and size, demand 1 vs 4: the mechanical
        # terms quadruple, the fixed overhead does not.
        one = DiskModel(self.PARAMS, seed=0)
        four = DiskModel(self.PARAMS, seed=0)
        t1 = one.service_time(disk_request(1.0, lba=50_000_000))
        t4 = four.service_time(disk_request(4.0, lba=50_000_000))
        seek = 1e-3
        transfer = 4096 / 1e6
        assert t4 - t1 == pytest.approx(3.0 * (seek + transfer), rel=1e-6)

    def test_fixed_costs_not_scaled(self):
        # Sequential request (no seek): only transfer scales.
        model = DiskModel(self.PARAMS, seed=0)
        model.service_time(disk_request(1.0, lba=0))
        t1 = model.service_time(disk_request(1.0, lba=0))
        model2 = DiskModel(self.PARAMS, seed=0)
        model2.service_time(disk_request(1.0, lba=0))
        t8 = model2.service_time(disk_request(8.0, lba=0))
        transfer = 4096 / 1e6
        assert t8 - t1 == pytest.approx(7.0 * transfer, rel=1e-6)


class TestSSDDemand:
    PARAMS = SSDParameters(jitter=0.0, gc_threshold=4)

    def test_unit_demand_bit_identical(self):
        a = SSDModel(self.PARAMS, seed=0)
        b = SSDModel(self.PARAMS, seed=0)
        for kind in (IOKind.READ, IOKind.WRITE, IOKind.WRITE):
            r_new = Request(arrival=0.0, kind=kind, service_demand=1.0)
            r_old = Request(arrival=0.0, kind=kind)
            assert a.service_time(r_new) == b.service_time(r_old)

    def test_read_latency_scales(self):
        model = SSDModel(self.PARAMS, seed=0)
        t1 = model.service_time(Request(arrival=0.0, service_demand=1.0))
        t8 = model.service_time(Request(arrival=0.0, service_demand=8.0))
        assert t8 == pytest.approx(8.0 * t1)

    def test_write_debt_accrues_by_demand(self):
        model = SSDModel(self.PARAMS, seed=0)
        # One demand-4 write reaches the threshold by itself and eats
        # the GC pause — four unit writes' worth of debt in one request.
        t = model.service_time(
            Request(arrival=0.0, kind=IOKind.WRITE, service_demand=4.0)
        )
        assert model.gc_events == 1
        assert t == pytest.approx(
            4.0 * self.PARAMS.write_latency + self.PARAMS.gc_pause
        )
        # Debt resets: the next unit write is stall-free.
        model.service_time(Request(arrival=0.0, kind=IOKind.WRITE))
        assert model.gc_events == 1

    def test_unit_writes_keep_gc_cadence(self):
        # Historical behavior: a GC stall every gc_threshold unit writes.
        model = SSDModel(self.PARAMS, seed=0)
        for _ in range(8):
            model.service_time(Request(arrival=0.0, kind=IOKind.WRITE))
        assert model.gc_events == 2
