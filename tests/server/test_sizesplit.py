"""Tests for the SPLIT-style size-threshold farm (SizeSplitSystem)."""

import numpy as np
import pytest

from repro.core.request import QoSClass
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.server.sizesplit import SizeSplitSystem
from repro.shaping import RunConfig, run_policy
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource


def sized_workload(seed=0, n=50, horizon=10.0):
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, horizon, n))
    sizes = rng.choice([0.5, 1.0, 8.0], size=n, p=[0.4, 0.4, 0.2])
    return Workload(arrivals, name="sized", sizes=sizes)


def run_farm(workload, cmin=4.0, delta_c=4.0, delta=0.5, **kwargs):
    sim = Simulator()
    system = SizeSplitSystem(sim, cmin, delta_c, delta, **kwargs)
    WorkloadSource(sim, workload, system).start()
    sim.run()
    return system


class TestValidation:
    def test_bad_threshold(self):
        with pytest.raises(ConfigurationError, match="threshold"):
            SizeSplitSystem(Simulator(), 4.0, 4.0, 0.5, threshold=0.0)

    def test_bad_share(self):
        with pytest.raises(ConfigurationError, match="small_share"):
            SizeSplitSystem(Simulator(), 4.0, 4.0, 0.5, small_share=1.0)


class TestRouting:
    def test_placement_is_by_size(self):
        workload = sized_workload()
        system = run_farm(workload)
        for request in system.small_driver.completed:
            assert request.service_demand <= system.threshold
        for request in system.large_driver.completed:
            assert request.service_demand > system.threshold
        assert system.routed_small + system.routed_large == len(workload)

    def test_unit_workload_all_small(self):
        workload = Workload(np.linspace(0, 5, 20), name="unit")
        system = run_farm(workload)
        assert system.routed_large == 0
        assert len(system.small_driver.completed) == 20

    def test_conservation(self):
        workload = sized_workload(seed=3)
        system = run_farm(workload)
        ledger = system.fault_ledger()
        assert ledger == {"completed": len(workload), "dropped": 0, "shed": 0}


class TestClassifierIntegration:
    def test_q1_slots_release_on_both_sides(self):
        workload = sized_workload(seed=5)
        system = run_farm(workload)
        # Every admitted slot was released: occupancy returns to zero.
        assert system.classifier.len_q1 == 0

    def test_classes_mix_on_both_partitions(self):
        # Primaries land on whichever side their size dictates.
        workload = sized_workload(seed=7, n=80)
        system = run_farm(workload)
        small_classes = {r.qos_class for r in system.small_driver.completed}
        large_classes = {r.qos_class for r in system.large_driver.completed}
        assert QoSClass.PRIMARY in small_classes
        assert QoSClass.PRIMARY in large_classes

    def test_by_class_merges_partitions(self):
        workload = sized_workload(seed=9)
        system = run_farm(workload)
        by_class = system.by_class
        total = sum(len(c) for c in by_class.values())
        assert total == len(system.completed)


class TestRunLayer:
    def test_run_policy_splitfarm(self):
        workload = sized_workload(seed=11)
        result = run_policy(
            workload, "splitfarm", config=RunConfig(4.0, 4.0, 0.5)
        )
        assert len(result.overall) == len(workload)

    def test_fraction_within_weighted(self):
        workload = sized_workload(seed=13)
        system = run_farm(workload)
        f = system.fraction_within(0.5)
        assert 0.0 <= f <= 1.0
        hits = sum(1 for r in system.completed if r.response_time <= 0.5 + 1e-12)
        assert f == pytest.approx(hits / len(system.completed))
