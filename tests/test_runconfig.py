"""Tests for RunConfig, the run_policy shim, and size-aware runs."""

import numpy as np
import pytest

from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry
from repro.shaping import RunConfig, run_policy
from repro.workload import BimodalDemand, attach_demands


@pytest.fixture
def workload(rng):
    return Workload(np.sort(rng.uniform(0.0, 20.0, 400)), name="rc")


class TestRunConfig:
    def test_holds_the_plan(self):
        config = RunConfig(3.0, 2.0, 0.5)
        assert (config.cmin, config.delta_c, config.delta) == (3.0, 2.0, 0.5)
        assert config.admission == "count"
        assert config.engine is None

    @pytest.mark.parametrize(
        "args", [(0.0, 1.0, 0.5), (3.0, -1.0, 0.5), (3.0, 1.0, 0.0)]
    )
    def test_validates_capacities(self, args):
        with pytest.raises(ConfigurationError, match="bad configuration"):
            RunConfig(*args)

    def test_validates_admission(self):
        with pytest.raises(ConfigurationError, match="unknown admission mode"):
            RunConfig(3.0, 2.0, 0.5, admission="bytes")

    def test_with_engine_copies(self):
        config = RunConfig(3.0, 2.0, 0.5)
        batch = config.with_engine("batch")
        assert batch.engine == "batch" and config.engine is None
        assert batch.cmin == config.cmin

    def test_is_hashable(self):
        assert hash(RunConfig(3.0, 2.0, 0.5)) == hash(RunConfig(3.0, 2.0, 0.5))


class TestRunPolicyShim:
    def test_config_and_flat_kwargs_conflict(self, workload):
        with pytest.raises(ConfigurationError, match="not both"):
            run_policy(workload, "split", 3.0, 2.0, 0.5,
                       config=RunConfig(3.0, 2.0, 0.5))

    def test_missing_capacities_rejected(self, workload):
        with pytest.raises(ConfigurationError, match="needs cmin"):
            run_policy(workload, "split", 3.0, 2.0)

    def test_flat_observability_kwargs_deprecated_but_working(self, workload):
        registry = MetricsRegistry()
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            result = run_policy(
                workload, "miser", 3.0, 2.0, 0.5, metrics=registry
            )
        assert result.telemetry is not None
        assert len(result.overall) == len(workload)

    def test_flat_capacities_alone_do_not_warn(self, workload, recwarn):
        result = run_policy(workload, "split", 3.0, 2.0, 0.5)
        assert len(result.overall) == len(workload)
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_config_path_equals_flat_path_bitwise(self, workload):
        flat = run_policy(workload, "split", 3.0, 2.0, 0.5)
        via_config = run_policy(workload, "split", config=RunConfig(3.0, 2.0, 0.5))
        assert np.array_equal(flat.overall.samples, via_config.overall.samples)
        assert flat.primary_misses == via_config.primary_misses


class TestUnitSizeBitParity:
    """sizes=ones must be bit-identical to the unsized canonical form."""

    @pytest.mark.parametrize("policy", ["split", "fcfs", "miser"])
    @pytest.mark.parametrize("engine", ["scalar", "auto"])
    def test_unit_sizes_bit_identical(self, workload, policy, engine):
        unit = workload.with_sizes(np.ones(len(workload)))
        config = RunConfig(3.0, 2.0, 0.5, engine=engine)
        plain = run_policy(workload, policy, config=config)
        sized = run_policy(unit, policy, config=config)
        assert np.array_equal(plain.overall.samples, sized.overall.samples)
        assert np.array_equal(plain.primary.samples, sized.primary.samples)
        assert plain.primary_misses == sized.primary_misses


class TestWorkAdmissionRuns:
    @pytest.fixture
    def sized(self, workload):
        return attach_demands(
            workload, BimodalDemand(short=1.0, long=6.0, long_fraction=0.2),
            seed=3,
        )

    @pytest.mark.parametrize("policy", ["split", "miser"])
    def test_count_vs_work_diverge_on_heterogeneous_demands(self, sized, policy):
        count = run_policy(sized, policy, config=RunConfig(4.0, 2.0, 0.5))
        work = run_policy(
            sized, policy, config=RunConfig(4.0, 2.0, 0.5, admission="work")
        )
        assert count.admission == "count" and work.admission == "work"
        # Conservation either way.
        assert len(count.overall) == len(sized)
        assert len(work.overall) == len(sized)
        # The admitted class genuinely differs under a long/short mix.
        assert len(count.primary) != len(work.primary)

    def test_work_mode_needs_scalar_engine(self, sized):
        config = RunConfig(4.0, 2.0, 0.5, admission="work", engine="batch")
        with pytest.raises(ConfigurationError, match="work"):
            run_policy(sized, "split", config=config)

    def test_auto_engine_falls_back_to_scalar_for_work(self, sized):
        config = RunConfig(4.0, 2.0, 0.5, admission="work", engine="auto")
        result = run_policy(sized, "split", config=config)
        assert result.engine == "scalar"

    def test_sized_split_bit_identical_across_engines(self, workload):
        # Count-bound sized runs are batch-eligible; demands <= 1 keep
        # the split Q1 guarantee intact.
        sized = workload.with_sizes(
            np.where(np.arange(len(workload)) % 3 == 0, 0.5, 1.0)
        )
        scalar = run_policy(
            sized, "split", config=RunConfig(3.0, 2.0, 0.5, engine="scalar")
        )
        batch = run_policy(
            sized, "split", config=RunConfig(3.0, 2.0, 0.5, engine="batch")
        )
        assert batch.engine == "batch"
        assert np.array_equal(scalar.overall.samples, batch.overall.samples)
        assert scalar.primary_misses == batch.primary_misses
