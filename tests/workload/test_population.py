"""Tests for the poisson-poisson user-population generator."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.rng import derive_seed
from repro.workload import (
    BimodalDemand,
    UserPopulation,
    poisson_poisson_workload,
)

POP = UserPopulation(mean_users=12.0, requests_per_minute=60.0, window=10.0)


def _arrivals_in_worker(seed: int) -> np.ndarray:
    """Module-level so ProcessPoolExecutor can pickle it."""
    return poisson_poisson_workload(POP, duration=40.0, seed=seed).arrivals


def _derived_in_worker(args) -> int:
    base, keys = args
    return derive_seed(base, *keys)


class TestUserPopulation:
    def test_mean_rate(self):
        pop = UserPopulation(mean_users=30.0, requests_per_minute=120.0)
        assert pop.mean_rate == pytest.approx(60.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mean_users": 0.0, "requests_per_minute": 1.0},
            {"mean_users": -1.0, "requests_per_minute": 1.0},
            {"mean_users": 1.0, "requests_per_minute": 0.0},
            {"mean_users": 1.0, "requests_per_minute": 1.0, "window": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            UserPopulation(**kwargs)


class TestPoissonPoisson:
    def test_arrivals_sorted_and_bounded(self):
        workload = poisson_poisson_workload(POP, duration=35.0, seed=3)
        arrivals = workload.arrivals
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals.size == 0 or (
            arrivals[0] >= 0.0 and arrivals[-1] < 35.0
        )

    def test_same_seed_reproduces_bitwise(self):
        a = poisson_poisson_workload(POP, duration=40.0, seed=7)
        b = poisson_poisson_workload(POP, duration=40.0, seed=7)
        assert np.array_equal(a.arrivals, b.arrivals)
        assert a.metadata["users_per_window"] == b.metadata["users_per_window"]

    def test_different_seeds_differ(self):
        a = poisson_poisson_workload(POP, duration=40.0, seed=7)
        b = poisson_poisson_workload(POP, duration=40.0, seed=8)
        assert not np.array_equal(a.arrivals, b.arrivals)

    def test_windows_are_independent_streams(self):
        # Window w only draws from derive_seed(seed, "population", w), so
        # a longer run's prefix is bit-identical to a shorter run.
        short = poisson_poisson_workload(POP, duration=20.0, seed=5)
        long = poisson_poisson_workload(POP, duration=40.0, seed=5)
        prefix = long.arrivals[long.arrivals < 20.0]
        assert np.array_equal(short.arrivals, prefix)

    def test_partial_last_window_scaled_pro_rata(self):
        # duration=15 with window=10 has a half window; arrivals must
        # still respect the duration bound.
        workload = poisson_poisson_workload(POP, duration=15.0, seed=11)
        assert workload.arrivals.size == 0 or workload.arrivals[-1] < 15.0
        assert len(workload.metadata["users_per_window"]) == 2

    def test_demand_sampler_sizes_the_workload(self):
        sampler = BimodalDemand(short=1.0, long=4.0, long_fraction=0.5)
        workload = poisson_poisson_workload(
            POP, duration=30.0, seed=2, demand_sampler=sampler
        )
        assert workload.has_sizes
        assert workload.sizes.shape == workload.arrivals.shape
        assert set(np.unique(workload.sizes)) <= {1.0, 4.0}
        assert workload.metadata["demands"] == sampler.describe()

    def test_unsized_by_default(self):
        workload = poisson_poisson_workload(POP, duration=30.0, seed=2)
        assert workload.sizes is None
        assert not workload.has_sizes
        assert workload.total_work == len(workload)

    def test_metadata_provenance(self):
        workload = poisson_poisson_workload(POP, duration=30.0, seed=9)
        md = workload.metadata
        assert md["generator"] == "poisson-poisson"
        assert md["seed"] == 9
        assert md["window"] == POP.window
        assert md["mean_users"] == POP.mean_users

    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigurationError):
            poisson_poisson_workload(POP, duration=0.0)

    def test_overdispersed_relative_to_poisson(self):
        # The doubly stochastic draw inflates the per-window count
        # variance above the Poisson variance (= mean).  Deterministic
        # given the seed, so no flake.
        workload = poisson_poisson_workload(POP, duration=600.0, seed=1)
        edges = np.arange(0.0, 600.0 + POP.window, POP.window)
        counts, _ = np.histogram(workload.arrivals, bins=edges)
        assert counts.var() > counts.mean()


class TestCrossProcessDeterminism:
    """derive_seed streams reproduce across --jobs worker processes."""

    def test_derive_seed_identical_in_workers(self):
        cases = [(0, ("population", 3)), (42, ("closed-loop", 7)), (7, ("demands", "ws"))]
        local = [derive_seed(base, *keys) for base, keys in cases]
        with ProcessPoolExecutor(max_workers=2) as pool:
            remote = list(pool.map(_derived_in_worker, cases))
        assert local == remote

    def test_population_identical_across_two_workers(self):
        local = _arrivals_in_worker(13)
        with ProcessPoolExecutor(max_workers=2) as pool:
            results = list(pool.map(_arrivals_in_worker, [13, 13]))
        assert np.array_equal(results[0], local)
        assert np.array_equal(results[1], local)
