"""Tests for closed-loop traffic: arrivals depend on completions."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.server.constant_rate import constant_rate_server
from repro.server.driver import DeviceDriver
from repro.sched.registry import make_scheduler
from repro.shaping import RunConfig
from repro.sim.engine import Simulator
from repro.sim.source import ClosedLoopSource
from repro.workload import ConstantDemand, run_closed_loop


def _fcfs_system(sim, rate):
    scheduler = make_scheduler("fcfs", rate, 0.0, 0.5)
    server = constant_rate_server(sim, rate, name="fcfs")
    return DeviceDriver(sim, server, scheduler)


def _run_source(rate, n_users=4, think_time=0.5, horizon=30.0, seed=3):
    sim = Simulator()
    driver = _fcfs_system(sim, rate)
    source = ClosedLoopSource(
        sim, driver, n_users=n_users, think_time=think_time,
        horizon=horizon, seed=seed,
    )
    source.start()
    sim.run()
    return source, driver


class TestClosedLoopSource:
    def test_arrival_waits_for_completion_per_user(self):
        source, _ = _run_source(rate=2.0)
        by_user = {}
        for request in source.requests:
            by_user.setdefault(request.client_id, []).append(request)
        for requests in by_user.values():
            for prev, nxt in zip(requests, requests[1:]):
                assert prev.completion is not None
                assert nxt.arrival >= prev.completion

    def test_slow_server_self_throttles(self):
        # The defining closed-loop property: the same population offers
        # *fewer* requests to a slower server, because each user's next
        # arrival waits on service.
        fast, _ = _run_source(rate=50.0)
        slow, _ = _run_source(rate=1.0)
        assert len(slow.requests) < len(fast.requests)

    def test_all_submissions_complete_and_inflight_drains(self):
        source, driver = _run_source(rate=5.0)
        assert source.inflight == 0
        assert len(driver.completed) == len(source.requests)

    def test_deterministic_by_seed(self):
        a, _ = _run_source(rate=3.0, seed=11)
        b, _ = _run_source(rate=3.0, seed=11)
        c, _ = _run_source(rate=3.0, seed=12)
        assert [r.arrival for r in a.requests] == [r.arrival for r in b.requests]
        assert [r.arrival for r in a.requests] != [r.arrival for r in c.requests]

    def test_horizon_retires_users(self):
        source, _ = _run_source(rate=5.0, horizon=10.0)
        assert all(r.arrival < 10.0 for r in source.requests)

    def test_requires_completion_hooks(self):
        class NoHooks:
            def on_arrival(self, request):  # pragma: no cover
                pass

        with pytest.raises(ConfigurationError, match="add_completion_hook"):
            ClosedLoopSource(
                Simulator(), NoHooks(), n_users=1, think_time=1.0, horizon=1.0
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 0, "think_time": 1.0, "horizon": 1.0},
            {"n_users": 2, "think_time": 0.0, "horizon": 1.0},
            {"n_users": 2, "think_time": 1.0, "horizon": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        sim = Simulator()
        driver = _fcfs_system(sim, 1.0)
        with pytest.raises(ConfigurationError):
            ClosedLoopSource(sim, driver, **kwargs)


class TestRunClosedLoop:
    CONFIG = RunConfig(4.0, 2.0, 0.5)

    @pytest.mark.parametrize("policy", ["split", "miser", "fcfs"])
    def test_conserves_across_policies(self, policy):
        result = run_closed_loop(
            policy, self.CONFIG, n_users=6, think_time=0.4,
            horizon=20.0, seed=2,
        )
        assert result.conserved()
        assert result.ledger["completed"] == len(result.submitted)
        assert result.throughput == pytest.approx(
            len(result.submitted) / 20.0
        )

    def test_deterministic(self):
        a = run_closed_loop(
            "split", self.CONFIG, n_users=5, think_time=0.3, horizon=15.0, seed=9
        )
        b = run_closed_loop(
            "split", self.CONFIG, n_users=5, think_time=0.3, horizon=15.0, seed=9
        )
        assert np.array_equal(a.overall.samples, b.overall.samples)
        assert [r.arrival for r in a.submitted] == [r.arrival for r in b.submitted]

    def test_demand_sampler_sizes_requests(self):
        result = run_closed_loop(
            "split", self.CONFIG, n_users=4, think_time=0.4,
            horizon=15.0, seed=1, demand_sampler=ConstantDemand(2.0),
        )
        assert result.submitted
        assert all(r.service_demand == 2.0 for r in result.submitted)

    def test_work_admission_accepted(self):
        config = RunConfig(4.0, 2.0, 0.5, admission="work")
        result = run_closed_loop(
            "split", config, n_users=4, think_time=0.4,
            horizon=15.0, seed=1, demand_sampler=ConstantDemand(0.5),
        )
        assert result.conserved()

    def test_observed_workload_round_trips(self):
        result = run_closed_loop(
            "miser", self.CONFIG, n_users=4, think_time=0.4,
            horizon=15.0, seed=6,
        )
        observed = result.observed_workload()
        assert len(observed) == len(result.submitted)
        assert np.all(np.diff(observed.arrivals) >= 0)

    def test_rejects_observability_config(self):
        config = RunConfig(4.0, 2.0, 0.5, sample_interval=0.1)
        with pytest.raises(ConfigurationError, match="observability"):
            run_closed_loop(
                "split", config, n_users=2, think_time=1.0, horizon=5.0
            )

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            run_closed_loop(
                "nope", self.CONFIG, n_users=2, think_time=1.0, horizon=5.0
            )


class TestClosedLoopAQM:
    """Closed-loop population against an AQM-windowed stack: the window
    adds a fourth (residency) ledger bucket that must drain to zero."""

    @pytest.mark.parametrize("policy", ["split", "miser", "fcfs"])
    def test_window_bucket_drains(self, policy):
        config = RunConfig(4.0, 2.0, 0.5, aqm="static")
        result = run_closed_loop(
            policy, config, n_users=6, think_time=0.4, horizon=20.0, seed=2
        )
        assert result.conserved()
        assert result.ledger["window"] == 0
        assert result.ledger["completed"] == len(result.submitted)

    def test_shared_window_split(self):
        config = RunConfig(4.0, 2.0, 0.5, aqm="codel", aqm_shared=True)
        result = run_closed_loop(
            "split", config, n_users=8, think_time=0.2, horizon=20.0, seed=3
        )
        assert result.conserved()
        assert result.ledger["window"] == 0

    def test_dormant_identical_with_and_without_aqm_field(self):
        """aqm=None must be byte-identical to the pre-AQM closed loop."""
        plain = run_closed_loop(
            "miser", RunConfig(4.0, 2.0, 0.5), n_users=6,
            think_time=0.4, horizon=20.0, seed=2,
        )
        dormant = run_closed_loop(
            "miser", RunConfig(4.0, 2.0, 0.5, aqm=None), n_users=6,
            think_time=0.4, horizon=20.0, seed=2,
        )
        assert list(plain.overall.samples) == list(dormant.overall.samples)
        assert "window" not in dormant.ledger
