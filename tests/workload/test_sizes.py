"""Tests for the service-demand samplers and attach_demands."""

import numpy as np
import pytest

from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.workload import (
    BimodalDemand,
    ConstantDemand,
    ExponentialDemand,
    LognormalDemand,
    attach_demands,
)

SAMPLERS = [
    ConstantDemand(2.0),
    ExponentialDemand(mean=1.5),
    LognormalDemand(median=1.0, sigma=0.8),
    BimodalDemand(short=0.5, long=6.0, long_fraction=0.2),
]


@pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: s.describe()["sampler"])
class TestSamplerContract:
    def test_shape_and_positivity(self, sampler, rng):
        out = sampler(rng, 250)
        assert out.shape == (250,)
        assert out.dtype == np.float64
        assert np.all(out > 0)

    def test_describe_is_jsonable_provenance(self, sampler):
        desc = sampler.describe()
        assert isinstance(desc, dict)
        assert "sampler" in desc

    def test_deterministic_per_generator_state(self, sampler):
        a = sampler(np.random.default_rng(99), 50)
        b = sampler(np.random.default_rng(99), 50)
        assert np.array_equal(a, b)


class TestSpecificShapes:
    def test_constant_value(self, rng):
        assert np.all(ConstantDemand(3.5)(rng, 10) == 3.5)

    def test_bimodal_values(self, rng):
        out = BimodalDemand(short=1.0, long=8.0, long_fraction=0.3)(rng, 500)
        assert set(np.unique(out)) <= {1.0, 8.0}

    def test_bimodal_fraction_edges(self, rng):
        assert np.all(BimodalDemand(long_fraction=0.0)(rng, 100) == 1.0)
        all_long = BimodalDemand(long=5.0, long_fraction=1.0)(rng, 100)
        assert np.all(all_long == 5.0)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ConstantDemand(0.0),
            lambda: ConstantDemand(-1.0),
            lambda: ExponentialDemand(mean=0.0),
            lambda: LognormalDemand(median=-1.0),
            lambda: LognormalDemand(sigma=0.0),
            lambda: BimodalDemand(short=0.0),
            lambda: BimodalDemand(long=-2.0),
            lambda: BimodalDemand(long_fraction=1.5),
        ],
    )
    def test_validation(self, factory):
        with pytest.raises(ConfigurationError):
            factory()


class TestAttachDemands:
    def test_sizes_and_metadata(self, uniform_workload):
        sampler = ExponentialDemand(mean=2.0)
        sized = attach_demands(uniform_workload, sampler, seed=4)
        assert sized.has_sizes
        assert sized.sizes.shape == (len(uniform_workload),)
        assert sized.metadata["demands"] == sampler.describe()
        assert np.array_equal(sized.arrivals, uniform_workload.arrivals)

    def test_original_untouched(self, uniform_workload):
        attach_demands(uniform_workload, ConstantDemand(2.0), seed=4)
        assert uniform_workload.sizes is None

    def test_deterministic_by_seed_and_name(self, uniform_workload):
        sampler = LognormalDemand()
        a = attach_demands(uniform_workload, sampler, seed=4)
        b = attach_demands(uniform_workload, sampler, seed=4)
        c = attach_demands(uniform_workload, sampler, seed=5)
        assert np.array_equal(a.sizes, b.sizes)
        assert not np.array_equal(a.sizes, c.sizes)

    def test_name_feeds_the_stream(self):
        arrivals = np.linspace(0.0, 5.0, 40)
        x = attach_demands(Workload(arrivals, name="x"), ExponentialDemand(), seed=1)
        y = attach_demands(Workload(arrivals, name="y"), ExponentialDemand(), seed=1)
        assert not np.array_equal(x.sizes, y.sizes)
