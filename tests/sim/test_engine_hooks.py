"""Tests for the engine's event trace hooks."""

from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_ARRIVAL, PRIORITY_COMPLETION


class TestTraceHooks:
    def test_hooks_default_off(self):
        sim = Simulator()
        assert sim.on_event_scheduled is None
        assert sim.on_event_fired is None
        sim.schedule(1.0, lambda: None)
        sim.run()  # no hooks: nothing to go wrong

    def test_scheduled_hook_sees_time_and_priority(self):
        sim = Simulator()
        seen = []
        sim.on_event_scheduled = lambda t, p: seen.append((t, p))
        sim.schedule(2.0, lambda: None, priority=PRIORITY_ARRIVAL)
        sim.schedule(1.0, lambda: None, priority=PRIORITY_COMPLETION)
        assert seen == [(2.0, PRIORITY_ARRIVAL), (1.0, PRIORITY_COMPLETION)]

    def test_fired_hook_sees_execution_order(self):
        sim = Simulator()
        fired = []
        sim.on_event_fired = lambda t, p: fired.append((t, p))
        sim.schedule(2.0, lambda: None, priority=PRIORITY_ARRIVAL)
        sim.schedule(1.0, lambda: None, priority=PRIORITY_COMPLETION)
        sim.run()
        assert fired == [(1.0, PRIORITY_COMPLETION), (2.0, PRIORITY_ARRIVAL)]

    def test_schedule_after_triggers_hook(self):
        sim = Simulator()
        seen = []
        sim.on_event_scheduled = lambda t, p: seen.append(t)
        sim.schedule_after(0.5, lambda: None)
        assert seen == [0.5]

    def test_fired_hook_counts_every_event(self):
        sim = Simulator()
        counts = {"scheduled": 0, "fired": 0}
        sim.on_event_scheduled = lambda t, p: counts.__setitem__(
            "scheduled", counts["scheduled"] + 1
        )
        sim.on_event_fired = lambda t, p: counts.__setitem__(
            "fired", counts["fired"] + 1
        )

        def chain(depth: int) -> None:
            if depth:
                sim.schedule_after(0.1, lambda: chain(depth - 1))

        chain(5)
        sim.run()
        assert counts == {"scheduled": 5, "fired": 5}
