"""Columnar batch engine: parity with the event loop, selection, edges.

The batch engine's contract is *bit-identical samples* — not "close":
every parity assertion here uses exact equality.  Satellite edge cases
(zero-gap arrival batches, the negative-time guard, epoch-boundary
carry) are parametrized over both engines where applicable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.workload import Workload
from repro.exceptions import ConfigurationError, SimulationError
from repro.perf import engines
from repro.shaping import run_policy
from repro.sim import batch
from repro.sim.stats import ResponseTimeCollector
from repro.traces.synthetic import poisson_workload

ENGINES = ("scalar", "batch")

#: One bursty trace with zero-gap batches and exact timestamp ties.
ZERO_GAP = Workload(
    [0.0, 0.0, 0.0, 0.01, 0.01, 0.5, 0.5, 0.5, 0.5, 1.0, 2.0, 2.0],
    name="zero-gap",
)

#: Overloaded config: cmin=200 admits floor(200*0.05)=10 outstanding.
CONFIG = dict(cmin=200.0, delta_c=40.0, delta=0.05)


def run_both(workload, policy, **config):
    scalar = run_policy(workload, policy, engine="scalar", **config)
    columnar = run_policy(workload, policy, engine="batch", **config)
    return scalar, columnar


# ---------------------------------------------------------------------------
# run_policy parity
# ---------------------------------------------------------------------------


class TestRunPolicyParity:
    @pytest.mark.parametrize("policy", batch.SUPPORTED_POLICIES)
    def test_zero_gap_batches_bit_identical(self, policy):
        scalar, columnar = run_both(ZERO_GAP, policy, **CONFIG)
        assert columnar.engine == "batch"
        assert scalar.engine == "scalar"
        assert columnar.overall.samples.tolist() == scalar.overall.samples.tolist()
        assert columnar.primary.samples.tolist() == scalar.primary.samples.tolist()
        assert columnar.overflow.samples.tolist() == scalar.overflow.samples.tolist()
        assert columnar.primary_misses == scalar.primary_misses

    @pytest.mark.parametrize("policy", batch.SUPPORTED_POLICIES)
    def test_poisson_trace_bit_identical(self, policy):
        workload = poisson_workload(rate=400.0, duration=3.0, seed=7)
        scalar, columnar = run_both(workload, policy, **CONFIG)
        assert columnar.overall.samples.tolist() == scalar.overall.samples.tolist()
        assert columnar.primary_misses == scalar.primary_misses
        assert columnar.fraction_within() == scalar.fraction_within()

    def test_empty_workload(self):
        scalar, columnar = run_both(Workload([], name="empty"), "fcfs", **CONFIG)
        assert columnar.overall.samples.tolist() == []
        assert scalar.overall.samples.tolist() == []

    def test_single_arrival_at_zero(self):
        scalar, columnar = run_both(Workload([0.0]), "split", **CONFIG)
        assert columnar.overall.samples.tolist() == scalar.overall.samples.tolist()


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------


class TestEngineSelection:
    @pytest.fixture(autouse=True)
    def _clean_registry(self, monkeypatch):
        monkeypatch.delenv(engines.ENGINE_ENV_VAR, raising=False)
        monkeypatch.setattr(engines.REGISTRY, "_override", None)

    def test_defaults_to_auto(self):
        assert engines.active_engine() == "auto"

    def test_auto_takes_batch_path_when_eligible(self):
        result = run_policy(ZERO_GAP, "fcfs", **CONFIG)
        assert result.engine == "batch"

    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.setenv(engines.ENGINE_ENV_VAR, "scalar")
        assert engines.active_engine() == "scalar"
        result = run_policy(ZERO_GAP, "fcfs", **CONFIG)
        assert result.engine == "scalar"

    def test_env_var_rejects_nonsense(self, monkeypatch):
        monkeypatch.setenv(engines.ENGINE_ENV_VAR, "quantum")
        with pytest.raises(ConfigurationError, match="unknown execution engine"):
            engines.active_engine()

    def test_set_engine_and_restore(self):
        engines.set_engine("scalar")
        try:
            assert engines.active_engine() == "scalar"
        finally:
            engines.set_engine(None)
        assert engines.active_engine() == "auto"

    def test_set_engine_validates_eagerly(self):
        with pytest.raises(ConfigurationError):
            engines.set_engine("quantum")
        assert engines.active_engine() == "auto"

    def test_use_engine_restores_on_exit(self):
        with engines.use_engine("batch"):
            assert engines.active_engine() == "batch"
        assert engines.active_engine() == "auto"

    def test_argument_beats_override(self):
        with engines.use_engine("batch"):
            result = run_policy(ZERO_GAP, "fcfs", engine="scalar", **CONFIG)
        assert result.engine == "scalar"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(engines.ENGINE_ENV_VAR, "scalar")
        with engines.use_engine("batch"):
            assert engines.active_engine() == "batch"

    def test_available_engines(self):
        assert engines.available_engines() == ("scalar", "batch")


# ---------------------------------------------------------------------------
# Eligibility and fallback
# ---------------------------------------------------------------------------


class TestEligibility:
    @pytest.mark.parametrize("policy", ("fairqueue", "wf2q", "drr", "miser", "edf"))
    def test_auto_falls_back_for_other_policies(self, policy):
        result = run_policy(ZERO_GAP, policy, **CONFIG)
        assert result.engine == "scalar"

    def test_auto_falls_back_when_observed(self):
        from repro.obs import MetricsRegistry

        result = run_policy(
            ZERO_GAP, "fcfs", metrics=MetricsRegistry(), **CONFIG
        )
        assert result.engine == "scalar"
        assert result.telemetry is not None

    def test_auto_falls_back_for_sampler(self):
        result = run_policy(ZERO_GAP, "split", sample_interval=0.5, **CONFIG)
        assert result.engine == "scalar"

    def test_auto_falls_back_for_rate_recording(self):
        result = run_policy(ZERO_GAP, "fcfs", record_rates=0.1, **CONFIG)
        assert result.engine == "scalar"
        assert result.completion_series is not None

    def test_forced_batch_rejects_ineligible_policy(self):
        with pytest.raises(ConfigurationError, match="cannot run this configuration"):
            run_policy(ZERO_GAP, "miser", engine="batch", **CONFIG)

    def test_forced_batch_rejects_observability(self):
        with pytest.raises(ConfigurationError, match="cannot run this configuration"):
            run_policy(
                ZERO_GAP, "fcfs", engine="batch", sample_interval=0.5, **CONFIG
            )

    def test_unknown_policy_still_rejected_under_batch(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            run_policy(ZERO_GAP, "lifo", engine="batch", **CONFIG)

    def test_supports_reports_reasons(self):
        ok, reason = batch.supports("fcfs")
        assert ok and reason == "eligible"
        assert not batch.supports("edf")[0]
        assert not batch.supports("fcfs", metrics=object())[0]
        assert not batch.supports("split", sample_interval=1.0)[0]
        assert not batch.supports("fcfs", record_rates=0.1)[0]


# ---------------------------------------------------------------------------
# Columnar kernels
# ---------------------------------------------------------------------------


class TestColumnarKernels:
    def test_fcfs_matches_closed_form_lindley(self):
        """Same recurrence as the closed form, up to reassociation."""
        arrivals = poisson_workload(rate=300.0, duration=2.0, seed=3).arrivals
        service = 1.0 / 250.0
        completions = batch.fcfs_completions(arrivals, 250.0)
        n = arrivals.size
        closed = service * (np.arange(n) + 1.0) + np.maximum.accumulate(
            arrivals - service * np.arange(n)
        )
        np.testing.assert_allclose(completions, closed, rtol=0, atol=1e-9)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ConfigurationError, match="negative arrival"):
            batch.fcfs_completions(np.array([-1.0, 0.0]), 10.0)
        with pytest.raises(ConfigurationError, match="negative arrival"):
            batch.run_batch(np.array([-0.5]), "split", 10.0, 5.0, 1.0)

    def test_non_1d_rejected(self):
        with pytest.raises(ConfigurationError, match="one-dimensional"):
            batch.fcfs_completions(np.zeros((2, 2)), 10.0)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            batch.fcfs_completions(np.array([0.0]), 0.0)
        with pytest.raises(ConfigurationError, match="overflow capacity"):
            batch.split_columns(np.array([0.0]), 10.0, 0.0, 1.0)

    def test_epoch_boundary_carry(self, monkeypatch):
        """Finish times carry across epochs: shrinking EPOCH to force
        many sweeps must not change a single bit."""
        arrivals = poisson_workload(rate=500.0, duration=1.0, seed=11).arrivals
        reference = batch.fcfs_completions(arrivals, 300.0)
        ref_cols = batch.split_columns(arrivals, 300.0, 60.0, 0.02)
        monkeypatch.setattr(batch, "EPOCH", 7)
        np.testing.assert_array_equal(
            batch.fcfs_completions(arrivals, 300.0), reference
        )
        small = batch.split_columns(arrivals, 300.0, 60.0, 0.02)
        np.testing.assert_array_equal(small.admitted, ref_cols.admitted)
        np.testing.assert_array_equal(small.q1_completions, ref_cols.q1_completions)
        np.testing.assert_array_equal(small.q2_completions, ref_cols.q2_completions)

    def test_run_batch_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="no batch kernel"):
            batch.run_batch(np.array([0.0]), "edf", 10.0, 5.0, 1.0)


class TestFarm:
    @pytest.mark.parametrize("units", (1, 3, 4))
    def test_matches_event_driven_farm(self, units):
        from repro.sched.fcfs import FCFSScheduler
        from repro.server.driver import DeviceDriver
        from repro.server.farm import constant_rate_farm
        from repro.sim.engine import Simulator
        from repro.sim.source import WorkloadSource

        workload = poisson_workload(rate=120.0, duration=2.0, seed=5)
        sim = Simulator()
        farm = constant_rate_farm(sim, 100.0, units)
        driver = DeviceDriver(sim, farm, FCFSScheduler())
        WorkloadSource(sim, workload, driver).start()
        sim.run()
        event = np.full(len(workload), np.nan)
        for request in driver.completed:
            event[request.index] = request.completion
        columnar = batch.farm_fcfs_completions(workload.arrivals, units, 100.0)
        np.testing.assert_array_equal(columnar, event)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="units"):
            batch.farm_fcfs_completions(np.array([0.0]), 0, 10.0)
        with pytest.raises(ConfigurationError, match="capacity"):
            batch.farm_fcfs_completions(np.array([0.0]), 2, -1.0)

    def test_one_unit_degenerates_to_fcfs(self):
        arrivals = ZERO_GAP.arrivals
        np.testing.assert_array_equal(
            batch.farm_fcfs_completions(arrivals, 1, 50.0),
            batch.fcfs_completions(arrivals, 50.0),
        )


# ---------------------------------------------------------------------------
# Streaming aggregation
# ---------------------------------------------------------------------------


class TestStreaming:
    def test_fcfs_stream_matches_run_batch(self):
        workload = poisson_workload(rate=400.0, duration=2.0, seed=9)
        run = batch.run_batch(workload.arrivals, "fcfs", **CONFIG)
        summary = batch.fcfs_stream(
            batch.chunked(workload.arrivals, 13),
            CONFIG["cmin"] + CONFIG["delta_c"],
            bound=CONFIG["delta"],
        )
        assert summary.count == len(workload)
        assert summary.stats.min == run.overall.min()
        assert summary.stats.max == run.overall.max()
        assert summary.stats.mean == pytest.approx(run.overall.mean(), rel=1e-12)
        within = int(np.count_nonzero(run.overall <= CONFIG["delta"] + 1e-12))
        assert summary.within == within
        assert summary.fraction_within == within / len(workload)

    def test_split_stream_matches_split_columns(self):
        workload = poisson_workload(rate=400.0, duration=2.0, seed=13)
        cols = batch.split_columns(
            workload.arrivals, CONFIG["cmin"], CONFIG["delta_c"], CONFIG["delta"]
        )
        q1, q2 = batch.split_stream(
            batch.chunked(workload.arrivals, 17),
            CONFIG["cmin"],
            CONFIG["delta_c"],
            CONFIG["delta"],
        )
        assert q1.count == int(cols.admitted.sum())
        assert q2.count == int((~cols.admitted).sum())
        q1_resp = cols.q1_completions - workload.arrivals[cols.admitted]
        q2_resp = cols.q2_completions - workload.arrivals[~cols.admitted]
        assert q1.stats.max == q1_resp.max()
        assert q2.stats.max == q2_resp.max()

    def test_empty_stream(self):
        summary = batch.fcfs_stream(iter(()), 10.0, bound=1.0)
        assert summary.count == 0
        assert np.isnan(summary.fraction_within)

    def test_chunked_validation(self):
        with pytest.raises(ConfigurationError, match="chunk size"):
            list(batch.chunked(np.array([0.0]), 0))


# ---------------------------------------------------------------------------
# Collector array ingestion
# ---------------------------------------------------------------------------


class TestExtendArray:
    def test_samples_bit_identical_to_scalar_adds(self):
        values = np.abs(np.random.default_rng(2).normal(0.05, 0.02, 257))
        loop = ResponseTimeCollector("loop")
        for v in values.tolist():
            loop.add(v)
        bulk = ResponseTimeCollector("bulk")
        bulk.extend_array(values)
        assert bulk.samples.tolist() == loop.samples.tolist()
        assert bulk.stats.count == loop.stats.count
        assert bulk.stats.min == loop.stats.min
        assert bulk.stats.max == loop.stats.max

    def test_negative_response_rejected(self):
        collector = ResponseTimeCollector("guard")
        with pytest.raises(SimulationError, match="negative"):
            collector.extend_array(np.array([0.1, -0.2]))

    def test_empty_array_is_noop(self):
        collector = ResponseTimeCollector("empty")
        collector.extend_array(np.empty(0))
        assert collector.samples.tolist() == []
