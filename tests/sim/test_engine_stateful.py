"""Stateful property test: the simulation kernel under random operation
sequences.

A hypothesis rule-based state machine drives the engine with arbitrary
interleavings of schedule / cancel / run-until, checking the global
invariants the rest of the library relies on:

* fired events come out in (time, priority, sequence) order;
* cancelled events never fire;
* the clock never runs backwards and never passes an unfired event.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_ARRIVAL, PRIORITY_COMPLETION


class EngineMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.fired: list[tuple[float, int, int]] = []
        self.pending: dict[int, tuple[float, int]] = {}
        self.cancelled: set[int] = set()
        self.handles = {}
        self.next_id = 0

    @rule(
        delay=st.floats(min_value=0.0, max_value=10.0),
        priority=st.sampled_from([PRIORITY_COMPLETION, PRIORITY_ARRIVAL]),
    )
    def schedule(self, delay, priority):
        event_id = self.next_id
        self.next_id += 1
        time = self.sim.now + delay

        def fire(event_id=event_id, time=time, priority=priority):
            self.fired.append((time, priority, event_id))

        self.handles[event_id] = self.sim.schedule(time, fire, priority=priority)
        self.pending[event_id] = (time, priority)

    @rule(data=st.data())
    def cancel_one(self, data):
        live = [e for e in self.pending if e not in self.cancelled]
        if not live:
            return
        victim = data.draw(st.sampled_from(live))
        self.handles[victim].cancel()
        self.cancelled.add(victim)

    @rule(horizon=st.floats(min_value=0.0, max_value=12.0))
    def run_until(self, horizon):
        target = self.sim.now + horizon
        before = len(self.fired)
        self.sim.run(until=target)
        # Everything scheduled at or before the horizon (and not
        # cancelled) must have fired.
        for event_id, (time, _) in list(self.pending.items()):
            if time <= target and event_id not in self.cancelled:
                assert any(f[2] == event_id for f in self.fired), event_id
                del self.pending[event_id]
        # Events fired by ONE run call coexisted in the queue, so they
        # must come out in (time, priority, scheduling order).  (Across
        # separate run calls only time-monotonicity holds — an event
        # scheduled later can have a higher priority at an instant that
        # already passed its lower-priority peers.)
        batch = self.fired[before:]
        assert batch == sorted(batch)

    @invariant()
    def fired_times_monotone(self):
        times = [t for (t, _, _) in self.fired]
        assert times == sorted(times)

    @invariant()
    def cancelled_never_fire(self):
        fired_ids = {i for (_, _, i) in self.fired}
        assert not (fired_ids & self.cancelled)

    @invariant()
    def clock_monotone(self):
        if self.fired:
            assert self.sim.now >= self.fired[-1][0] - 1e-12


EngineMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestEngineMachine = EngineMachine.TestCase
