"""Tests for statistics collection."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.stats import OnlineStats, RateRecorder, ResponseTimeCollector


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.count == 0
        assert s.variance == 0.0

    def test_matches_numpy(self, rng):
        data = rng.normal(5.0, 2.0, 500)
        s = OnlineStats()
        for x in data:
            s.add(float(x))
        assert s.count == 500
        assert s.mean == pytest.approx(data.mean())
        assert s.variance == pytest.approx(data.var(), rel=1e-9)
        assert s.std == pytest.approx(data.std(), rel=1e-9)
        assert s.min == data.min()
        assert s.max == data.max()

    def test_single_sample(self):
        s = OnlineStats()
        s.add(3.0)
        assert s.mean == 3.0
        assert s.variance == 0.0

    def test_merge_equals_concatenation(self, rng):
        a_data = rng.normal(0, 1, 200)
        b_data = rng.normal(10, 3, 300)
        a, b = OnlineStats(), OnlineStats()
        for x in a_data:
            a.add(float(x))
        for x in b_data:
            b.add(float(x))
        merged = a.merge(b)
        joint = np.concatenate([a_data, b_data])
        assert merged.count == 500
        assert merged.mean == pytest.approx(joint.mean())
        assert merged.variance == pytest.approx(joint.var(), rel=1e-9)
        assert merged.min == joint.min()

    def test_merge_with_empty(self):
        a = OnlineStats()
        a.add(1.0)
        merged = a.merge(OnlineStats())
        assert merged.count == 1
        assert merged.mean == 1.0


class TestResponseTimeCollector:
    def test_fraction_within(self):
        c = ResponseTimeCollector()
        c.extend([0.01, 0.02, 0.03, 0.04])
        assert c.fraction_within(0.025) == pytest.approx(0.5)
        assert c.fraction_within(1.0) == 1.0
        assert c.fraction_within(0.0) == 0.0

    def test_fraction_within_boundary_inclusive(self):
        c = ResponseTimeCollector()
        c.add(0.01)
        assert c.fraction_within(0.01) == 1.0

    def test_empty_fraction_is_nan(self):
        # An empty collector has no compliance to report: NaN, not a
        # vacuous 1.0 that would read as "perfect compliance".
        assert math.isnan(ResponseTimeCollector().fraction_within(0.1))

    def test_negative_sample_rejected(self):
        c = ResponseTimeCollector("q")
        with pytest.raises(SimulationError, match="negative"):
            c.add(-0.1)

    def test_cdf(self):
        c = ResponseTimeCollector()
        c.extend([0.3, 0.1, 0.2])
        xs, ys = c.cdf()
        assert xs.tolist() == [0.1, 0.2, 0.3]
        assert ys.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_percentile(self):
        c = ResponseTimeCollector()
        c.extend(np.arange(1, 101) / 1000.0)
        assert c.percentile(50) == pytest.approx(0.0505, abs=1e-3)

    def test_binned_fractions_paper_style(self):
        c = ResponseTimeCollector()
        c.extend([0.04, 0.08, 0.4, 0.9, 2.0])
        bins = c.binned_fractions([0.05, 0.1, 0.5, 1.0])
        assert bins["<=0.05"] == pytest.approx(0.2)
        assert bins["<=0.1"] == pytest.approx(0.4)
        assert bins["<=0.5"] == pytest.approx(0.6)
        assert bins["<=1"] == pytest.approx(0.8)
        assert bins[">1"] == pytest.approx(0.2)

    def test_binned_fractions_empty_edges_rejected(self):
        c = ResponseTimeCollector()
        c.add(0.1)
        with pytest.raises(ConfigurationError, match="at least one edge"):
            c.binned_fractions([])

    def test_binned_fractions_unsorted_edges_rejected(self):
        c = ResponseTimeCollector()
        c.add(0.1)
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            c.binned_fractions([0.5, 0.1])
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            c.binned_fractions([0.1, 0.1])

    def test_summary_keys(self):
        c = ResponseTimeCollector("q1")
        c.extend([0.1, 0.2])
        s = c.summary()
        assert s["name"] == "q1"
        assert s["count"] == 2
        assert s["max"] == 0.2

    def test_len(self):
        c = ResponseTimeCollector()
        c.extend([0.1, 0.2, 0.3])
        assert len(c) == 3


class TestRateRecorder:
    def test_series(self):
        r = RateRecorder(bin_width=1.0)
        for t in (0.1, 0.2, 1.5, 3.9):
            r.record(t)
        starts, rates = r.series()
        assert starts.tolist() == [0.0, 1.0, 2.0, 3.0]
        assert rates.tolist() == [2.0, 1.0, 0.0, 1.0]

    def test_peak(self):
        r = RateRecorder(bin_width=0.5)
        for t in (0.1, 0.2, 0.3):
            r.record(t)
        assert r.peak_rate() == pytest.approx(6.0)

    def test_empty(self):
        starts, rates = RateRecorder().series()
        assert starts.size == 0
        assert RateRecorder().peak_rate() == 0.0

    def test_invalid_bin(self):
        with pytest.raises(SimulationError):
            RateRecorder(bin_width=0.0)

    def test_negative_time_rejected(self):
        r = RateRecorder(bin_width=1.0)
        with pytest.raises(SimulationError, match="negative"):
            r.record(-0.5)

    def test_floor_binning_near_zero(self):
        # int() truncation would have put a time in (-bin, 0) into bin 0;
        # flooring plus the negative-time guard keeps bins well-defined,
        # and times exactly on an edge go to the upper bin.
        r = RateRecorder(bin_width=1.0)
        r.record(0.0)
        r.record(1.0)
        r.record(0.999999)
        starts, rates = r.series()
        assert starts.tolist() == [0.0, 1.0]
        assert rates.tolist() == [2.0, 1.0]
