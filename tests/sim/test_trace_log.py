"""Tests for the lifecycle tracer."""

import pytest

from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.sched.fcfs import FCFSScheduler
from repro.sched.registry import make_scheduler
from repro.server.constant_rate import constant_rate_server
from repro.server.driver import DeviceDriver
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource
from repro.sim.trace_log import LifecycleTracer, Phase


def run_traced(workload, scheduler_factory, capacity=50.0, tracer_capacity=100_000):
    sim = Simulator()
    tracer = LifecycleTracer(sim, scheduler_factory(), capacity=tracer_capacity)
    driver = DeviceDriver(sim, constant_rate_server(sim, capacity), tracer)
    WorkloadSource(sim, workload, driver).start()
    sim.run()
    return tracer


class TestTracer:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            LifecycleTracer(Simulator(), FCFSScheduler(), capacity=0)

    def test_three_events_per_request(self, uniform_workload):
        tracer = run_traced(uniform_workload, FCFSScheduler)
        assert len(tracer.events) == 3 * len(uniform_workload)
        for index in (0, 50, 99):
            phases = [e.phase for e in tracer.for_request(index)]
            assert phases == [Phase.ARRIVE, Phase.DISPATCH, Phase.COMPLETE]

    def test_dispatch_order_fcfs(self, uniform_workload):
        tracer = run_traced(uniform_workload, FCFSScheduler)
        order = tracer.dispatch_order()
        assert order == sorted(order)

    def test_event_times_monotone_per_request(self, uniform_workload):
        tracer = run_traced(uniform_workload, FCFSScheduler)
        for index in range(0, 100, 10):
            times = [e.time for e in tracer.for_request(index)]
            assert times == sorted(times)

    def test_classification_captured(self, bursty_workload):
        tracer = run_traced(
            bursty_workload, lambda: make_scheduler("miser", 40.0, 10.0, 0.1)
        )
        arrive = [e for e in tracer.events if e.phase is Phase.ARRIVE]
        classes = {e.qos_class for e in arrive}
        assert classes == {"PRIMARY", "OVERFLOW"}

    def test_miser_reorders_dispatch(self, bursty_workload):
        """Miser dispatches overflow requests ahead of queued primaries
        when slack allows — visible as out-of-index-order dispatches."""
        tracer = run_traced(
            bursty_workload, lambda: make_scheduler("miser", 40.0, 40.0, 0.1)
        )
        order = tracer.dispatch_order()
        assert order != sorted(order)

    def test_bounded_log_evicts_oldest(self, uniform_workload):
        tracer = run_traced(
            uniform_workload, FCFSScheduler, tracer_capacity=50
        )
        assert len(tracer.events) == 50
        # The survivors are the most recent events.
        assert tracer.events[-1].phase is Phase.COMPLETE

    def test_to_text(self, uniform_workload):
        tracer = run_traced(uniform_workload, FCFSScheduler)
        text = tracer.to_text(limit=6)
        assert len(text.splitlines()) == 6
        assert "COMPLETE" in text

    def test_pending_passthrough(self):
        tracer = LifecycleTracer(Simulator(), FCFSScheduler())
        assert tracer.pending() == 0
