"""Tests for the simulation engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5, 1.5]

    def test_never_goes_backwards(self):
        sim = Simulator()
        times = []

        def record():
            times.append(sim.now)

        for t in (3.0, 1.0, 2.0, 1.0):
            sim.schedule(t, record)
        sim.run()
        assert times == sorted(times)


class TestScheduling:
    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="clock"):
            sim.schedule(1.0, lambda: None)

    def test_schedule_after(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule_after(0.5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.5]

    def test_schedule_after_negative_delay(self):
        with pytest.raises(SimulationError, match="delay"):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_cancel_via_returned_event(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append("fired"))
        event.cancel()
        sim.run()
        assert seen == []

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule_after(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestRunControls:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        sim.run()  # resume
        assert seen == [1, 5]

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run(until=2.0)
        assert seen == [2]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule_after(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=50)

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_processed == 2

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        error = {}

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                error["e"] = exc

        sim.schedule(1.0, reenter)
        sim.run()
        assert "e" in error


class TestEvery:
    def test_periodic_callback(self):
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), until=3.5)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_invalid_interval(self):
        with pytest.raises(SimulationError, match="interval"):
            Simulator().every(0.0, lambda: None, until=1.0)

    def test_installed_mid_simulation(self):
        """Regression: the first tick is interval after *now*, not at the
        absolute instant ``interval`` (which is in the past mid-run)."""
        sim = Simulator()
        ticks = []
        sim.schedule(
            5.0, lambda: sim.every(1.0, lambda: ticks.append(sim.now), until=8.5)
        )
        sim.run()
        assert ticks == [6.0, 7.0, 8.0]

    def test_installed_mid_run_after_advance(self):
        """Also valid when the clock advanced before installation."""
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), until=4.5)
        sim.run()
        assert ticks == [3.0, 4.0]
