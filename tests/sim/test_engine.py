"""Tests for the simulation engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_ARRIVAL, PRIORITY_MONITOR


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5, 1.5]

    def test_never_goes_backwards(self):
        sim = Simulator()
        times = []

        def record():
            times.append(sim.now)

        for t in (3.0, 1.0, 2.0, 1.0):
            sim.schedule(t, record)
        sim.run()
        assert times == sorted(times)


class TestScheduling:
    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="clock"):
            sim.schedule(1.0, lambda: None)

    def test_schedule_after(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule_after(0.5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.5]

    def test_schedule_after_negative_delay(self):
        with pytest.raises(SimulationError, match="delay"):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_cancel_via_returned_event(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append("fired"))
        event.cancel()
        sim.run()
        assert seen == []

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule_after(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestRunControls:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        sim.run()  # resume
        assert seen == [1, 5]

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run(until=2.0)
        assert seen == [2]

    def test_until_with_drained_queue_lands_on_until(self):
        """Both exit paths of run(until) leave the clock at ``until``:
        the queue draining early must not strand ``now`` at the last
        event time."""
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_until_never_moves_clock_backwards(self):
        sim = Simulator()
        sim.schedule(4.0, lambda: None)
        sim.run()
        assert sim.now == 4.0
        sim.run(until=2.0)  # horizon already passed: no-op
        assert sim.now == 4.0

    def test_drained_until_exit_allows_scheduling_at_horizon(self):
        """After an early-drain exit the clock is at ``until``, so a
        monitoring tick installed next starts relative to the horizon —
        consistent with the stopped-on-later-event exit path."""
        sim = Simulator()
        sim.schedule(0.5, lambda: None)
        sim.run(until=2.0)
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), until=4.5)
        sim.run()
        assert ticks == [3.0, 4.0]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule_after(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=50)

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_processed == 2

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        error = {}

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                error["e"] = exc

        sim.schedule(1.0, reenter)
        sim.run()
        assert "e" in error


class TestEvery:
    def test_periodic_callback(self):
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), until=3.5)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_invalid_interval(self):
        with pytest.raises(SimulationError, match="interval"):
            Simulator().every(0.0, lambda: None, until=1.0)

    def test_installed_mid_simulation(self):
        """Regression: the first tick is interval after *now*, not at the
        absolute instant ``interval`` (which is in the past mid-run)."""
        sim = Simulator()
        ticks = []
        sim.schedule(
            5.0, lambda: sim.every(1.0, lambda: ticks.append(sim.now), until=8.5)
        )
        sim.run()
        assert ticks == [6.0, 7.0, 8.0]

    def test_installed_mid_run_after_advance(self):
        """Also valid when the clock advanced before installation."""
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), until=4.5)
        sim.run()
        assert ticks == [3.0, 4.0]

    def test_single_reusable_tick_object(self):
        """Regression: ``every`` reschedules ONE callback object instead
        of allocating fresh closures per tick (hot-loop garbage)."""
        sim = Simulator()
        sim.every(1.0, lambda: None, until=10.5)
        (first,) = sim._queue._heap
        sim.run(until=5.0)
        (pending,) = [e for e in sim._queue._heap if not e.cancelled]
        assert pending.callback is first.callback

    def test_tick_interacts_with_until_exit(self):
        """Ticks exactly at ``until`` fire; the grid resumes unshifted."""
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), until=5.5)
        sim.run(until=3.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert sim.now == 3.0
        sim.run()
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_monitor_fires_after_arrival_at_same_instant(self):
        """At identical timestamps PRIORITY_ARRIVAL (10) precedes
        PRIORITY_MONITOR (20) regardless of scheduling order — samplers
        observe a state that already includes the instant's arrivals."""
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("monitor"), priority=PRIORITY_MONITOR)
        sim.schedule(1.0, lambda: order.append("arrival"), priority=PRIORITY_ARRIVAL)
        sim.run()
        assert order == ["arrival", "monitor"]
