"""Tests for the event queue primitives."""

import pytest

from repro.sim.events import (
    PRIORITY_ARRIVAL,
    PRIORITY_COMPLETION,
    EventQueue,
)
from repro.exceptions import SimulationError


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        fired = []
        q.push(2.0, PRIORITY_ARRIVAL, lambda: fired.append("b"))
        q.push(1.0, PRIORITY_ARRIVAL, lambda: fired.append("a"))
        q.push(3.0, PRIORITY_ARRIVAL, lambda: fired.append("c"))
        while (e := q.pop()) is not None:
            e.callback()
        assert fired == ["a", "b", "c"]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        fired = []
        q.push(1.0, PRIORITY_ARRIVAL, lambda: fired.append("arrival"))
        q.push(1.0, PRIORITY_COMPLETION, lambda: fired.append("completion"))
        while (e := q.pop()) is not None:
            e.callback()
        # Completions fire before arrivals at the same instant.
        assert fired == ["completion", "arrival"]

    def test_fifo_within_same_key(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.push(1.0, PRIORITY_ARRIVAL, lambda i=i: fired.append(i))
        while (e := q.pop()) is not None:
            e.callback()
        assert fired == [0, 1, 2, 3, 4]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        fired = []
        event = q.push(1.0, PRIORITY_ARRIVAL, lambda: fired.append("x"))
        event.cancel()
        assert q.pop() is None
        assert fired == []

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        first = q.push(1.0, PRIORITY_ARRIVAL, lambda: None)
        q.push(2.0, PRIORITY_ARRIVAL, lambda: None)
        first.cancel()
        assert q.peek_time() == 2.0

    def test_len_counts_entries(self):
        q = EventQueue()
        q.push(1.0, PRIORITY_ARRIVAL, lambda: None)
        q.push(2.0, PRIORITY_ARRIVAL, lambda: None)
        assert len(q) == 2


class TestValidation:
    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError, match="NaN"):
            q.push(float("nan"), PRIORITY_ARRIVAL, lambda: None)

    def test_peek_empty(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty(self):
        assert EventQueue().pop() is None
