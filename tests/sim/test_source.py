"""Tests for the workload replay source."""

import numpy as np

from repro.core.workload import Workload
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng, spawn
from repro.sim.source import WorkloadSource


class _Recorder:
    def __init__(self):
        self.requests = []

    def on_arrival(self, request):
        self.requests.append(request)


class TestWorkloadSource:
    def test_replays_all_arrivals_in_order(self, uniform_workload):
        sim = Simulator()
        sink = _Recorder()
        source = WorkloadSource(sim, uniform_workload, sink)
        source.start()
        sim.run()
        assert len(sink.requests) == len(uniform_workload)
        arrivals = [r.arrival for r in sink.requests]
        assert arrivals == sorted(arrivals)
        assert source.exhausted

    def test_request_fields(self, toy_workload):
        sim = Simulator()
        sink = _Recorder()
        WorkloadSource(sim, toy_workload, sink, client_id=3).start()
        sim.run()
        assert [r.index for r in sink.requests] == [0, 1, 2, 3, 4]
        assert all(r.client_id == 3 for r in sink.requests)

    def test_arrival_time_matches_sim_clock(self, toy_workload):
        sim = Simulator()
        seen = []

        class ClockSink:
            def on_arrival(self, request):
                seen.append((sim.now, request.arrival))

        WorkloadSource(sim, toy_workload, ClockSink()).start()
        sim.run()
        assert all(now == arrival for now, arrival in seen)

    def test_on_request_hook(self, toy_workload):
        sim = Simulator()
        hooked = []
        source = WorkloadSource(
            sim, toy_workload, _Recorder(), on_request=hooked.append
        )
        source.start()
        sim.run()
        assert len(hooked) == 5

    def test_empty_workload(self, empty_workload):
        sim = Simulator()
        source = WorkloadSource(sim, empty_workload, _Recorder())
        source.start()
        sim.run()
        assert source.exhausted


class TestRng:
    def test_make_rng_from_int(self):
        a = make_rng(7)
        b = make_rng(7)
        assert a.random() == b.random()

    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_spawn_independent(self):
        children = spawn(make_rng(0), 3)
        assert len(children) == 3
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3
