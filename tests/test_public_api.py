"""API contract: the documented public surface exists and stays importable.

Guards against refactors silently dropping re-exports that README,
docs/api.md and downstream users rely on.
"""

import importlib

import pytest

#: module -> names that must be importable from it.
PUBLIC_API = {
    "repro": [
        "Workload", "WorkloadShaper", "run_policy", "GraduatedSLA",
        "CapacityPlanner", "CapacityPlan", "consolidate",
        "self_consolidation", "decompose", "decompose_fluid",
        "SharedServer", "Tenant", "PolicyRunResult", "RunConfig",
        "ShapingOutcome",
        "ReproError", "__version__",
    ],
    "repro.core": [
        "Workload", "Request", "QoSClass", "IOKind",
        "decompose", "decompose_fluid", "decompose_exact",
        "count_admitted", "primary_response_times",
        "lemma1_lower_bound", "lower_bound_drops",
        "max_admissible_bruteforce", "subset_feasible",
        "CapacityPlanner", "CapacityPlan", "min_capacity",
        "ConsolidationResult", "consolidate", "shifted_merge",
        "ArrivalCurve", "ServiceCurve", "busy_periods", "scl_excess",
        "GraduatedSLA", "SLATier", "TierCompliance",
        "SlackTracker", "initial_slack", "is_unconstrained",
        "AdmissionController", "AdmittedClient",
        "TierAssignment", "decompose_tiers", "plan_tiers",
        "plan_and_decompose",
        "PricedTier", "price_menu", "reserve_cost", "burstiness_discount",
        "StreamingPlanner", "EstimateSnapshot",
    ],
    "repro.sched": [
        "Scheduler", "OnlineRTTClassifier", "FCFSScheduler",
        "FairQueue", "FairQueueScheduler", "MiserScheduler",
        "EDFScheduler", "DRRScheduler", "DeficitRoundRobin",
        "PClockScheduler", "FlowSLA", "feasible",
        "make_scheduler", "ALL_POLICIES", "SINGLE_SERVER_POLICIES",
        "TOPOLOGY_POLICIES", "CLASSIFIER_FREE_POLICIES",
        "SRPTScheduler", "NudgeScheduler", "BoostScheduler",
    ],
    "repro.server": [
        "Server", "ServiceTimeModel", "ConstantRateModel",
        "constant_rate_server", "DiskModel", "DiskParameters",
        "DeviceDriver", "SplitSystem", "ServerFarm", "constant_rate_farm",
        "SizeSplitSystem",
        "Brownout", "DegradedModel", "FlakyModel",
    ],
    "repro.sim": [
        "Simulator", "Event", "EventQueue", "WorkloadSource",
        "ClosedLoopSource",
        "OnlineStats", "RateRecorder", "ResponseTimeCollector",
        "LifecycleTracer", "Phase", "make_rng", "spawn",
        "BatchRun", "SplitColumns", "StreamSummary", "run_batch",
        "fcfs_completions", "split_columns", "farm_fcfs_completions",
        "fcfs_stream", "split_stream", "EPOCH",
    ],
    "repro.perf": [
        "ENV_VAR", "ENGINE_ENV_VAR", "NUMPY_MIN_BATCHES",
        "KernelBackend", "active_backend", "dispatch_backend",
        "available_backends", "count_admitted", "admitted_per_batch",
        "count_admitted_sweep", "set_backend", "use_backend",
        "active_engine", "available_engines", "resolve_engine",
        "set_engine", "use_engine",
    ],
    "repro.traces": [
        "websearch", "fintrans", "openmail", "load", "WORKLOADS",
        "TraceRecord", "records_to_workload", "spc", "hpl", "perturb",
    ],
    "repro.traces.synthetic": [
        "poisson_workload", "nonhomogeneous_poisson", "mmpp2_workload",
        "pareto_onoff_workload", "bmodel_workload",
        "windowed_bmodel_workload", "periodic_bursts", "episode_bursts",
        "spike_train", "superpose", "fit_workload", "validate_fit",
        "FittedModel", "calibration_report",
    ],
    "repro.analysis": [
        "fcfs_response_times", "compliance", "cdf_points",
        "time_to_compliance", "index_of_dispersion", "hurst_rs",
        "burstiness_summary", "ComplianceMonitor", "compare_policies",
        "study", "packing_count", "format_table", "ascii_series",
        "ascii_cdf", "ascii_bars", "write_dat", "export_figure4",
    ],
    "repro.workload": [
        "UserPopulation", "poisson_poisson_workload", "attach_demands",
        "ConstantDemand", "ExponentialDemand", "LognormalDemand",
        "BimodalDemand", "ClosedLoopResult", "run_closed_loop",
    ],
    "repro.core.registry": ["Registry"],
    "repro.experiments": [
        "table1", "figure2", "figure3", "figure4", "figure5", "figure6",
        "figure7", "figure8", "extensions", "sensitivity", "resilience",
        "workbound",
        "ExperimentConfig", "EXPERIMENTS", "run_experiment",
        "PAPER_DELTAS", "PAPER_FRACTIONS", "PAPER_WORKLOADS",
    ],
    "repro.faults": [
        "Crash", "RateDroop", "SpikeStorm", "FaultSchedule",
        "random_schedule", "FaultableServer", "INFLIGHT_POLICIES",
        "FaultInjector", "FaultState", "FaultyModel", "RetryPolicy",
        "AdaptiveShaper", "ControllerConfig", "ConservationReport",
        "check_conservation", "assert_conservation",
        "ResilientRunResult", "run_resilient", "run_chaos",
        "RESILIENCE_POLICIES",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    missing = [
        name for name in PUBLIC_API[module_name] if not hasattr(module, name)
    ]
    assert not missing, f"{module_name} lost exports: {missing}"


def test_all_experiment_modules_have_run_and_render():
    from repro.experiments import EXPERIMENTS

    for name, (run, render) in EXPERIMENTS.items():
        assert callable(run), name
        assert callable(render), name


def test_policy_registry_matches_docs():
    from repro.sched import ALL_POLICIES

    assert set(ALL_POLICIES) == {
        "fcfs", "split", "fairqueue", "wf2q", "drr", "miser", "edf",
        "srpt", "nudge", "boost", "splitfarm",
    }
