"""Tests for the SPC (UMass) trace format."""

import io

import pytest

from repro.core.request import IOKind
from repro.exceptions import TraceFormatError
from repro.traces import spc
from repro.traces.formats import TraceRecord

SAMPLE = """0,303567,3072,r,0.000000
0,1222311,8192,w,0.010912
1,449280,4096,R,0.026214
0,303567,3072,r,0.026214
"""


class TestParseLine:
    def test_fields(self):
        record = spc.parse_line("0,303567,3072,r,0.026214")
        assert record.unit == 0
        assert record.lba == 303567
        assert record.size == 3072
        assert record.kind is IOKind.READ
        assert record.timestamp == pytest.approx(0.026214)

    def test_write_opcode(self):
        assert spc.parse_line("0,1,512,w,1.5").kind is IOKind.WRITE

    def test_extra_fields_tolerated(self):
        record = spc.parse_line("0,1,512,r,1.5,extra,fields")
        assert record.timestamp == 1.5

    def test_too_few_fields(self):
        with pytest.raises(TraceFormatError, match="fields"):
            spc.parse_line("0,1,512,r")

    def test_bad_number(self):
        with pytest.raises(TraceFormatError):
            spc.parse_line("0,xyz,512,r,1.5")

    def test_bad_opcode(self):
        with pytest.raises(TraceFormatError, match="opcode"):
            spc.parse_line("0,1,512,q,1.5")

    def test_line_number_in_error(self):
        with pytest.raises(TraceFormatError, match="line 7"):
            spc.parse_line("bad", line_number=7)


class TestIterRecords:
    def test_from_stream(self):
        records = list(spc.iter_records(io.StringIO(SAMPLE)))
        assert len(records) == 4

    def test_blank_lines_skipped(self):
        records = list(spc.iter_records(io.StringIO("\n" + SAMPLE + "\n\n")))
        assert len(records) == 4

    def test_unit_filter(self):
        records = list(spc.iter_records(io.StringIO(SAMPLE), units={1}))
        assert len(records) == 1
        assert records[0].unit == 1

    def test_from_file(self, tmp_path):
        path = tmp_path / "trace.spc"
        path.write_text(SAMPLE)
        assert len(list(spc.iter_records(path))) == 4


class TestReadWorkload:
    def test_basic(self):
        w = spc.read_workload(io.StringIO(SAMPLE), name="sample")
        assert len(w) == 4
        assert w.name == "sample"
        assert w.arrivals[0] == 0.0

    def test_max_records(self):
        w = spc.read_workload(io.StringIO(SAMPLE), max_records=2)
        assert len(w) == 2

    def test_out_of_order_timestamps_sorted(self):
        jittered = "0,1,512,r,1.0\n0,1,512,r,0.5\n"
        w = spc.read_workload(io.StringIO(jittered))
        # Sorted, then rebased to the earliest timestamp.
        assert w.arrivals.tolist() == [0.0, 0.5]


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        records = [
            TraceRecord(timestamp=0.0, lba=10, size=512, kind=IOKind.READ, unit=0),
            TraceRecord(timestamp=1.25, lba=20, size=4096, kind=IOKind.WRITE, unit=1),
        ]
        path = tmp_path / "out.spc"
        assert spc.write_records(records, path) == 2
        back = list(spc.iter_records(path))
        assert back == records

    def test_dumps(self):
        records = [
            TraceRecord(timestamp=0.5, lba=1, size=512, kind=IOKind.READ, unit=0)
        ]
        text = spc.dumps(records)
        assert text == "0,1,512,r,0.500000\n"

    def test_workload_to_records_roundtrip(self, uniform_workload):
        records = spc.workload_to_records(uniform_workload)
        text = spc.dumps(records)
        back = spc.read_workload(io.StringIO(text))
        assert len(back) == len(uniform_workload)
        import numpy as np

        # read_workload rebases to the first arrival; compare gaps.
        assert np.allclose(
            np.diff(back.arrivals), np.diff(uniform_workload.arrivals), atol=1e-5
        )
