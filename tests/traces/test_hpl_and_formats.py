"""Tests for the HP-style trace parser and shared format helpers."""

import io

import pytest

from repro.core.request import IOKind
from repro.exceptions import TraceFormatError
from repro.traces import hpl
from repro.traces.formats import TraceRecord, records_to_workload, validate_monotone

SAMPLE = """# OpenMail export
1000.000000 3 448292 8192 R
1000.012000 3 99220 4096 W
1000.031000 5 11 2048 r
"""


class TestHplParse:
    def test_fields(self):
        record = hpl.parse_line("12.5 3 448292 8192 R")
        assert record.timestamp == 12.5
        assert record.unit == 3
        assert record.lba == 448292
        assert record.size == 8192
        assert record.kind is IOKind.READ

    def test_comment_returns_none(self):
        assert hpl.parse_line("# header") is None

    def test_blank_returns_none(self):
        assert hpl.parse_line("   ") is None

    def test_extra_columns_ignored(self):
        record = hpl.parse_line("1.0 0 1 512 W queue=3 foo")
        assert record.kind is IOKind.WRITE

    def test_too_few_fields(self):
        with pytest.raises(TraceFormatError, match="fields"):
            hpl.parse_line("1.0 0 1 512")

    def test_negative_timestamp(self):
        with pytest.raises(TraceFormatError, match="negative"):
            hpl.parse_line("-1.0 0 1 512 R")

    def test_bad_field(self):
        with pytest.raises(TraceFormatError):
            hpl.parse_line("1.0 x 1 512 R")


class TestHplRead:
    def test_stream(self):
        records = list(hpl.iter_records(io.StringIO(SAMPLE)))
        assert len(records) == 3

    def test_file(self, tmp_path):
        path = tmp_path / "om.txt"
        path.write_text(SAMPLE)
        w = hpl.read_workload(path, name="om")
        assert len(w) == 3
        assert w.name == "om"

    def test_rebased_to_zero(self):
        w = hpl.read_workload(io.StringIO(SAMPLE))
        assert w.arrivals[0] == 0.0
        assert w.arrivals[1] == pytest.approx(0.012)

    def test_max_records(self):
        w = hpl.read_workload(io.StringIO(SAMPLE), max_records=2)
        assert len(w) == 2


class TestFormats:
    def test_record_validation(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(timestamp=-1.0, lba=0, size=0, kind=IOKind.READ)
        with pytest.raises(TraceFormatError):
            TraceRecord(timestamp=0.0, lba=0, size=-1, kind=IOKind.READ)

    def test_records_to_workload_rebase(self):
        records = [
            TraceRecord(timestamp=5.0, lba=0, size=0, kind=IOKind.READ),
            TraceRecord(timestamp=6.5, lba=0, size=0, kind=IOKind.READ),
        ]
        w = records_to_workload(records)
        assert w.arrivals.tolist() == [0.0, 1.5]

    def test_records_to_workload_no_rebase(self):
        records = [TraceRecord(timestamp=5.0, lba=0, size=0, kind=IOKind.READ)]
        w = records_to_workload(records, rebase=False)
        assert w.arrivals.tolist() == [5.0]

    def test_records_to_workload_empty(self):
        assert len(records_to_workload([])) == 0

    def test_validate_monotone_passes(self):
        records = [
            TraceRecord(timestamp=t, lba=0, size=0, kind=IOKind.READ)
            for t in (0.0, 1.0, 1.0, 2.0)
        ]
        assert len(list(validate_monotone(records))) == 4

    def test_validate_monotone_rejects(self):
        records = [
            TraceRecord(timestamp=1.0, lba=0, size=0, kind=IOKind.READ),
            TraceRecord(timestamp=0.5, lba=0, size=0, kind=IOKind.READ),
        ]
        with pytest.raises(TraceFormatError, match="monotone"):
            list(validate_monotone(records))
