"""Tests for the calibrated workload library.

Full-scale calibration numbers live in benchmarks/; here we check the
factories' contract at small scale (fast).
"""

import numpy as np
import pytest

from repro.core.capacity import CapacityPlanner
from repro.traces.library import (
    ABBREVIATIONS,
    WORKLOADS,
    fintrans,
    load,
    openmail,
    websearch,
)

DURATION = 30.0


class TestFactories:
    @pytest.mark.parametrize("factory", [websearch, fintrans, openmail])
    def test_deterministic(self, factory):
        a = factory(duration=DURATION)
        b = factory(duration=DURATION)
        assert np.array_equal(a.arrivals, b.arrivals)

    @pytest.mark.parametrize("factory", [websearch, fintrans, openmail])
    def test_seed_varies(self, factory):
        a = factory(duration=DURATION, seed=1)
        b = factory(duration=DURATION, seed=2)
        assert not np.array_equal(a.arrivals, b.arrivals)

    @pytest.mark.parametrize("factory", [websearch, fintrans, openmail])
    def test_duration_scales(self, factory):
        short = factory(duration=DURATION)
        longer = factory(duration=2 * DURATION)
        assert len(longer) > 1.5 * len(short)
        assert longer.duration <= 2 * DURATION + 1.0

    def test_names(self):
        assert websearch(duration=DURATION).name == "WebSearch"
        assert fintrans(duration=DURATION).name == "FinTrans"
        assert openmail(duration=DURATION).name == "OpenMail"

    def test_mean_rate_ordering(self):
        """OpenMail is the heaviest stream, FinTrans the lightest."""
        ws = websearch(duration=DURATION).mean_rate
        ft = fintrans(duration=DURATION).mean_rate
        om = openmail(duration=DURATION).mean_rate
        assert ft < ws < om


class TestLoad:
    def test_by_name_case_insensitive(self):
        w = load("WebSearch", duration=DURATION)
        assert w.name == "WebSearch"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            load("cello", duration=DURATION)

    def test_registry_complete(self):
        assert set(WORKLOADS) == {"websearch", "fintrans", "openmail"}
        assert set(ABBREVIATIONS) == set(WORKLOADS)

    def test_load_with_seed(self):
        a = load("fintrans", duration=DURATION, seed=99)
        b = load("fintrans", duration=DURATION, seed=99)
        assert np.array_equal(a.arrivals, b.arrivals)


class TestShapeInvariants:
    """Small-scale versions of the calibration targets."""

    @pytest.mark.parametrize("name,min_knee", [
        ("websearch", 2.0), ("fintrans", 4.0), ("openmail", 4.0),
    ])
    def test_capacity_knee_exists(self, name, min_knee):
        w = load(name, duration=60.0)
        planner = CapacityPlanner(w, 0.010)
        knee = planner.min_capacity(1.0) / planner.min_capacity(0.9)
        assert knee >= min_knee

    def test_knee_decays_with_deadline(self):
        w = load("websearch", duration=60.0)
        knees = []
        for delta in (0.005, 0.050):
            planner = CapacityPlanner(w, delta)
            knees.append(planner.min_capacity(1.0) / planner.min_capacity(0.9))
        assert knees[0] > knees[1]

    def test_openmail_peak_to_mean(self):
        w = openmail(duration=60.0)
        assert w.peak_to_mean(0.1) > 2.0
