"""Tests for the synthetic arrival-process generators."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.traces.synthetic.bmodel import (
    bmodel_counts,
    bmodel_workload,
    counts_to_arrivals,
    windowed_bmodel_workload,
)
from repro.traces.synthetic.composite import (
    diurnal_rate,
    episode_bursts,
    periodic_bursts,
    spike_train,
    superpose,
)
from repro.traces.synthetic.onoff import mmpp2_workload, pareto_onoff_workload
from repro.traces.synthetic.poisson import nonhomogeneous_poisson, poisson_workload


class TestPoisson:
    def test_mean_rate_close(self):
        w = poisson_workload(200.0, 60.0, seed=0)
        assert w.mean_rate == pytest.approx(200.0, rel=0.1)

    def test_deterministic_by_seed(self):
        a = poisson_workload(50.0, 10.0, seed=1)
        b = poisson_workload(50.0, 10.0, seed=1)
        assert np.array_equal(a.arrivals, b.arrivals)

    def test_different_seeds_differ(self):
        a = poisson_workload(50.0, 10.0, seed=1)
        b = poisson_workload(50.0, 10.0, seed=2)
        assert not np.array_equal(a.arrivals, b.arrivals)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            poisson_workload(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            poisson_workload(10.0, 0.0)

    def test_metadata(self):
        w = poisson_workload(50.0, 10.0)
        assert w.metadata["generator"] == "poisson"


class TestNHPP:
    def test_diurnal_mean(self):
        rate = diurnal_rate(100.0, 0.5, 20.0)
        w = nonhomogeneous_poisson(rate, 60.0, rate_max=151.0, seed=0)
        assert w.mean_rate == pytest.approx(100.0, rel=0.15)

    def test_rate_above_max_rejected(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            nonhomogeneous_poisson(lambda t: 200.0, 10.0, rate_max=100.0, seed=0)

    def test_diurnal_rate_validation(self):
        with pytest.raises(ConfigurationError):
            diurnal_rate(0.0, 0.5, 10.0)
        with pytest.raises(ConfigurationError):
            diurnal_rate(10.0, 1.5, 10.0)


class TestBModel:
    def test_counts_preserve_total(self):
        rng = np.random.default_rng(0)
        counts = bmodel_counts(10000, 64, 0.7, rng)
        assert counts.sum() == 10000
        assert counts.size == 64

    def test_even_bias_is_smooth(self):
        rng = np.random.default_rng(0)
        smooth = bmodel_counts(100000, 256, 0.5, rng)
        bursty = bmodel_counts(100000, 256, 0.8, np.random.default_rng(0))
        assert bursty.max() > 3 * smooth.max()

    def test_non_power_of_two_slots_truncate(self):
        rng = np.random.default_rng(0)
        counts = bmodel_counts(1000, 100, 0.6, rng)
        assert counts.size == 100
        # Documented: truncation can lose the tail slots' mass.
        assert counts.sum() <= 1000

    def test_bias_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            bmodel_counts(100, 8, 0.4, rng)
        with pytest.raises(ConfigurationError):
            bmodel_counts(100, 8, 1.0, rng)

    def test_workload_mean_rate(self):
        w = bmodel_workload(100.0, 30.0, bias=0.7, seed=0)
        assert w.mean_rate == pytest.approx(100.0, rel=0.15)

    def test_workload_burstier_with_higher_bias(self):
        mild = bmodel_workload(200.0, 30.0, bias=0.55, seed=5)
        wild = bmodel_workload(200.0, 30.0, bias=0.85, seed=5)
        assert wild.peak_to_mean(0.1) > mild.peak_to_mean(0.1)

    def test_counts_to_arrivals_no_jitter_batches(self):
        arrivals = counts_to_arrivals(np.array([2, 0, 3]), 1.0, None)
        assert arrivals.tolist() == [0.0, 0.0, 2.0, 2.0, 2.0]

    def test_counts_to_arrivals_jitter_within_slot(self):
        rng = np.random.default_rng(0)
        arrivals = counts_to_arrivals(np.array([5, 5]), 1.0, rng)
        assert np.all(arrivals[:5] >= 0) and np.all(arrivals < 2.0)
        assert np.all(np.diff(arrivals) >= 0)

    def test_workload_validation(self):
        with pytest.raises(ConfigurationError):
            bmodel_workload(100.0, 10.0, bias=0.7, slot_width=0.0)


class TestWindowedBModel:
    def test_mean_rate(self):
        w = windowed_bmodel_workload(150.0, 30.0, bias=0.75, seed=0)
        assert w.mean_rate == pytest.approx(150.0, rel=0.15)

    def test_smooth_at_window_scale(self):
        """Burstiness is confined below the window: window-scale counts
        are Poisson (peak/mean far below the b-model's)."""
        windowed = windowed_bmodel_workload(
            200.0, 60.0, bias=0.85, window=0.32, seed=1
        )
        scale_free = bmodel_workload(200.0, 60.0, bias=0.85, seed=1)
        assert windowed.peak_to_mean(1.0) < scale_free.peak_to_mean(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            windowed_bmodel_workload(100.0, 10.0, bias=0.3)
        with pytest.raises(ConfigurationError):
            windowed_bmodel_workload(100.0, 10.0, bias=0.7, window=20.0)


class TestOnOff:
    def test_mmpp_mean_rate(self):
        w = mmpp2_workload(50.0, 500.0, mean_off=1.0, mean_on=1.0, duration=120.0, seed=0)
        assert w.mean_rate == pytest.approx(275.0, rel=0.2)

    def test_mmpp_burstier_than_poisson(self):
        mmpp = mmpp2_workload(10.0, 800.0, 2.0, 0.5, 60.0, seed=0)
        poisson = poisson_workload(mmpp.mean_rate, 60.0, seed=0)
        assert mmpp.peak_to_mean(0.5) > 1.5 * poisson.peak_to_mean(0.5)

    def test_mmpp_validation(self):
        with pytest.raises(ConfigurationError):
            mmpp2_workload(0.0, 0.0, 1.0, 1.0, 10.0)
        with pytest.raises(ConfigurationError):
            mmpp2_workload(1.0, 10.0, 0.0, 1.0, 10.0)

    def test_pareto_alpha_validation(self):
        with pytest.raises(ConfigurationError, match="alpha"):
            pareto_onoff_workload(1.0, 10.0, 1.0, 1.0, 10.0, alpha=2.5)

    def test_pareto_generates(self):
        w = pareto_onoff_workload(20.0, 400.0, 1.0, 0.5, 60.0, alpha=1.5, seed=3)
        assert len(w) > 0
        assert w.metadata["generator"] == "pareto-onoff"


class TestComposite:
    def test_superpose_counts(self):
        a = poisson_workload(50.0, 10.0, seed=0)
        b = poisson_workload(50.0, 10.0, seed=1)
        merged = superpose(a, b, name="both")
        assert len(merged) == len(a) + len(b)
        assert merged.name == "both"

    def test_superpose_empty_args(self):
        with pytest.raises(ConfigurationError):
            superpose()

    def test_spike_train_counts(self):
        w = spike_train(3, 100, 0.5, 60.0, seed=0)
        assert len(w) == 300

    def test_spike_train_zero_spikes(self):
        assert len(spike_train(0, 10, 0.5, 60.0)) == 0

    def test_spike_train_validation(self):
        with pytest.raises(ConfigurationError):
            spike_train(1, 0, 0.5, 60.0)
        with pytest.raises(ConfigurationError):
            spike_train(1, 10, 60.0, 60.0)

    def test_spikes_are_dense(self):
        w = spike_train(1, 200, 0.1, 60.0, seed=0)
        assert w.arrivals.max() - w.arrivals.min() <= 0.1


class TestPeriodicBursts:
    def test_request_count(self):
        # 10 bursts of rate*width = 50 requests each.
        w = periodic_bursts(1.0, 500.0, 0.1, 10.0)
        assert len(w) == 500

    def test_evenly_spaced_within_burst(self):
        w = periodic_bursts(1.0, 100.0, 0.1, 2.0, jitter=0.0)
        first_burst = w.arrivals[:10]
        gaps = np.diff(first_burst)
        assert np.allclose(gaps, 0.01)

    def test_phase_offsets_start(self):
        w = periodic_bursts(1.0, 100.0, 0.1, 2.0, phase=0.25, jitter=0.0)
        assert w.arrivals[0] == pytest.approx(0.25)

    def test_self_similar_under_period_shift(self):
        """The property the consolidation experiments rely on: shifting by
        a whole number of periods re-aligns the burst train exactly
        (within the overlapping horizon)."""
        w = periodic_bursts(0.5, 200.0, 0.1, 20.0, jitter=0.0)
        shifted = w.shift(1.0)  # 2 periods, plain shift
        horizon_lo, horizon_hi = 1.0, float(w.arrivals.max())
        original = w.arrivals[(w.arrivals >= horizon_lo)]
        moved = shifted.arrivals[shifted.arrivals <= horizon_hi + 1e-9]
        assert np.allclose(np.sort(moved), np.sort(original), atol=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            periodic_bursts(0.0, 100.0, 0.1, 10.0)
        with pytest.raises(ConfigurationError):
            periodic_bursts(1.0, 100.0, 2.0, 10.0)
        with pytest.raises(ConfigurationError):
            periodic_bursts(1.0, 100.0, 0.1, 10.0, jitter=-0.1)


class TestEpisodeBursts:
    def test_sizes_bounded(self):
        w = episode_bursts(
            1.0, 60.0, size_min=10, size_alpha=1.5, size_cap=50, seed=0
        )
        assert len(w) > 0

    def test_zero_rate_empty(self):
        assert len(episode_bursts(0.0, 60.0)) == 0

    def test_heavier_tail_with_lower_alpha(self):
        light = episode_bursts(2.0, 120.0, size_min=10, size_alpha=1.9,
                               size_cap=100000, seed=7)
        heavy = episode_bursts(2.0, 120.0, size_min=10, size_alpha=1.1,
                               size_cap=100000, seed=7)
        assert heavy.peak_rate(0.1) > light.peak_rate(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            episode_bursts(-1.0, 60.0)
        with pytest.raises(ConfigurationError):
            episode_bursts(1.0, 60.0, size_alpha=1.0)
        with pytest.raises(ConfigurationError):
            episode_bursts(1.0, 60.0, width_min=0.0)


class TestGeneralMMPP:
    def test_mean_rate_matches_stationary_mix(self):
        from repro.traces.synthetic.onoff import mmpp_workload

        # Equal sojourns, uniform switching: stationary mix is uniform.
        w = mmpp_workload([30.0, 300.0, 900.0], [1.0, 1.0, 1.0], 120.0, seed=0)
        assert w.mean_rate == pytest.approx(410.0, rel=0.2)

    def test_two_state_reduces_to_mmpp2_statistics(self):
        from repro.traces.synthetic.onoff import mmpp2_workload, mmpp_workload

        # Both are draws around the same stationary mean (275 IOPS);
        # compare each to the analytic value, not to each other.
        general = mmpp_workload([50.0, 500.0], [1.0, 1.0], 240.0, seed=4)
        special = mmpp2_workload(50.0, 500.0, 1.0, 1.0, 240.0, seed=4)
        assert general.mean_rate == pytest.approx(275.0, rel=0.25)
        assert special.mean_rate == pytest.approx(275.0, rel=0.25)

    def test_custom_transition_matrix(self):
        from repro.traces.synthetic.onoff import mmpp_workload

        # A cyclic 3-state chain.
        matrix = [[0, 1, 0], [0, 0, 1], [1, 0, 0]]
        w = mmpp_workload([10.0, 100.0, 1000.0], [0.5, 0.5, 0.5], 60.0,
                          transition=matrix, seed=1)
        assert len(w) > 0

    def test_validation(self):
        from repro.traces.synthetic.onoff import mmpp_workload

        with pytest.raises(ConfigurationError):
            mmpp_workload([10.0], [1.0], 10.0)
        with pytest.raises(ConfigurationError):
            mmpp_workload([10.0, 20.0], [1.0], 10.0)
        with pytest.raises(ConfigurationError):
            mmpp_workload([10.0, 20.0], [1.0, 0.0], 10.0)
        with pytest.raises(ConfigurationError, match="sum to 1"):
            mmpp_workload([10.0, 20.0], [1.0, 1.0], 10.0,
                          transition=[[0, 0.5], [1, 0]])
        with pytest.raises(ConfigurationError, match="Self-transitions|redundant"):
            mmpp_workload([10.0, 20.0], [1.0, 1.0], 10.0,
                          transition=[[0.5, 0.5], [1, 0]])
