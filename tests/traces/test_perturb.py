"""Tests for workload perturbations."""

import numpy as np
import pytest

from repro.core.capacity import CapacityPlanner
from repro.exceptions import ConfigurationError
from repro.traces.perturb import batch, intensify, jitter, thin


class TestThin:
    def test_keeps_expected_fraction(self, uniform_workload):
        thinned = thin(uniform_workload, 0.5, seed=0)
        assert 25 <= len(thinned) <= 75  # binomial(100, 0.5)

    def test_keep_all(self, uniform_workload):
        assert len(thin(uniform_workload, 1.0)) in (
            len(uniform_workload),
            len(uniform_workload) - 0,
        )

    def test_validation(self, uniform_workload):
        with pytest.raises(ConfigurationError):
            thin(uniform_workload, 0.0)
        with pytest.raises(ConfigurationError):
            thin(uniform_workload, 1.5)

    def test_deterministic(self, uniform_workload):
        a = thin(uniform_workload, 0.7, seed=3)
        b = thin(uniform_workload, 0.7, seed=3)
        assert np.array_equal(a.arrivals, b.arrivals)

    def test_subset_of_original(self, uniform_workload):
        thinned = thin(uniform_workload, 0.5, seed=0)
        original = set(uniform_workload.arrivals.tolist())
        assert all(t in original for t in thinned.arrivals)


class TestJitter:
    def test_zero_magnitude_identity(self, uniform_workload):
        assert np.array_equal(
            jitter(uniform_workload, 0.0).arrivals, uniform_workload.arrivals
        )

    def test_bounded_displacement(self, uniform_workload):
        noisy = jitter(uniform_workload, 0.01, seed=0)
        # Count preserved, sorted, and total displacement bounded.
        assert len(noisy) == len(uniform_workload)
        assert np.all(np.diff(noisy.arrivals) >= 0)
        assert abs(noisy.arrivals.mean() - uniform_workload.arrivals.mean()) < 0.01

    def test_clamped_at_zero(self):
        from repro.core.workload import Workload

        w = Workload([0.0, 0.001])
        noisy = jitter(w, 0.5, seed=0)
        assert noisy.arrivals.min() >= 0.0

    def test_validation(self, uniform_workload):
        with pytest.raises(ConfigurationError):
            jitter(uniform_workload, -0.1)


class TestBatch:
    def test_quantizes_to_grid(self, uniform_workload):
        grid = batch(uniform_workload, 0.5)
        remainders = np.mod(grid.arrivals, 0.5)
        assert np.allclose(np.minimum(remainders, 0.5 - remainders), 0.0, atol=1e-9)

    def test_increases_capacity_requirement(self, uniform_workload):
        """Coalescing many arrivals into shared instants makes the stream
        burstier at the deadline scale, so Cmin rises on realistic
        workloads.  (Not a universal law: on tiny inputs flooring one
        arrival earlier can relieve its successor — see the property
        test's note.)"""
        before = CapacityPlanner(uniform_workload, 0.05).min_capacity(1.0)
        after = CapacityPlanner(batch(uniform_workload, 0.5), 0.05).min_capacity(1.0)
        assert after >= before

    def test_validation(self, uniform_workload):
        with pytest.raises(ConfigurationError):
            batch(uniform_workload, 0.0)


class TestIntensify:
    def test_factor_one_identity_count(self, uniform_workload):
        assert len(intensify(uniform_workload, 1.0)) == len(uniform_workload)

    def test_scales_request_count(self, uniform_workload):
        doubled = intensify(uniform_workload, 2.0, seed=0)
        assert len(doubled) == pytest.approx(2 * len(uniform_workload), rel=0.15)

    def test_fractional_factor(self, uniform_workload):
        grown = intensify(uniform_workload, 1.3, seed=0)
        assert len(grown) == pytest.approx(1.3 * len(uniform_workload), rel=0.2)

    def test_preserves_duration(self, uniform_workload):
        grown = intensify(uniform_workload, 2.0, seed=0, decorrelate=0.1)
        assert grown.duration <= uniform_workload.duration + 0.2

    def test_validation(self, uniform_workload):
        with pytest.raises(ConfigurationError):
            intensify(uniform_workload, 0.5)
