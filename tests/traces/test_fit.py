"""Tests for the synthetic-twin fitter."""

import numpy as np
import pytest

from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.traces.library import fintrans
from repro.traces.synthetic.fit import (
    FIT_FRACTIONS,
    FittedModel,
    fit_workload,
    measure,
    validate_fit,
)


@pytest.fixture(scope="module")
def target():
    return fintrans(duration=60.0)


@pytest.fixture(scope="module")
def model(target):
    return fit_workload(target)


class TestFit:
    def test_requires_enough_requests(self):
        with pytest.raises(ConfigurationError, match="100"):
            fit_workload(Workload([1.0] * 10))

    def test_floor_share_validation(self, target):
        with pytest.raises(ConfigurationError):
            fit_workload(target, floor_share=1.0)

    def test_parameters_positive(self, model):
        assert model.floor_rate > 0
        assert model.train_rate > 0
        assert 0 < model.train_width <= model.train_period
        assert model.episode_size_min >= 2
        assert model.episode_size_cap > model.episode_size_min

    def test_targets_recorded(self, model, target):
        mean, curve = measure(target, model.delta)
        assert model.target_mean == mean
        assert model.target_curve == curve


class TestGenerate:
    def test_deterministic_by_seed(self, model):
        a = model.generate(30.0, seed=5)
        b = model.generate(30.0, seed=5)
        assert np.array_equal(a.arrivals, b.arrivals)

    def test_name(self, model):
        assert model.generate(10.0).name.endswith("-twin")

    def test_duration_respected(self, model):
        twin = model.generate(30.0)
        assert twin.duration <= 30.5


class TestFidelity:
    def test_mean_rate_close(self, model):
        report = validate_fit(model, duration=60.0)
        assert report.twin_mean == pytest.approx(report.target_mean, rel=0.12)

    def test_capacity_curve_close(self, model):
        """Every cell of the knee curve within ~35% — the twin preserves
        the shape that drives provisioning decisions."""
        report = validate_fit(model, duration=60.0)
        for fraction in FIT_FRACTIONS:
            ratio = report.curve_ratio(fraction)
            assert 0.6 < ratio < 1.55, (fraction, ratio)
        assert report.worst_curve_ratio < 1.7

    def test_knee_preserved(self, model):
        report = validate_fit(model, duration=60.0)
        target_knee = report.target_curve[1.0] / report.target_curve[0.9]
        twin_knee = report.twin_curve[1.0] / report.twin_curve[0.9]
        assert twin_knee == pytest.approx(target_knee, rel=0.5)
        assert twin_knee > 2.0  # the burstiness survived the round trip


class TestOnArbitraryWorkload:
    def test_fits_poisson_like_trace(self):
        """A smooth trace fits too: tiny knee, near-degenerate episodes."""
        gen = np.random.default_rng(0)
        smooth = Workload(np.sort(gen.uniform(0, 60.0, 12000)), name="smooth")
        model = fit_workload(smooth)
        assert isinstance(model, FittedModel)
        report = validate_fit(model, duration=60.0)
        assert report.twin_mean == pytest.approx(report.target_mean, rel=0.25)
