"""Tests for the size-aware schedulers (SRPT / Nudge / Boost)."""

import pytest

from repro.core.request import Request
from repro.exceptions import ConfigurationError
from repro.sched.registry import (
    ALL_POLICIES,
    CLASSIFIER_FREE_POLICIES,
    SINGLE_SERVER_POLICIES,
    TOPOLOGY_POLICIES,
    make_scheduler,
)
from repro.sched.sized import BoostScheduler, NudgeScheduler, SRPTScheduler
from repro.server.constant_rate import constant_rate_server
from repro.server.driver import DeviceDriver
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource
from repro.core.workload import Workload

import numpy as np


def req(t=0.0, demand=1.0, index=0):
    return Request(arrival=t, index=index, service_demand=demand)


class TestSRPT:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="service_rate"):
            SRPTScheduler(service_rate=0.0)

    def test_orders_by_demand(self):
        srpt = SRPTScheduler(service_rate=2.0)
        big, small, mid = req(0.0, 5.0, 0), req(0.1, 1.0, 1), req(0.2, 2.0, 2)
        for r in (big, small, mid):
            srpt.on_arrival(r)
        assert [srpt.select(1.0) for _ in range(3)] == [small, mid, big]

    def test_preempt_decision_uses_work_units(self):
        srpt = SRPTScheduler(service_rate=2.0)
        srpt.on_arrival(req(0.0, 1.0))
        # In-flight remainder 1.0 s = 2.0 work units > 1.0 queued.
        assert srpt.should_preempt(req(0.0, 4.0), remaining=1.0, now=0.0)
        # Remainder 0.4 s = 0.8 work units < 1.0 queued: keep serving.
        assert not srpt.should_preempt(req(0.0, 4.0), remaining=0.4, now=0.0)

    def test_equal_work_does_not_thrash(self):
        srpt = SRPTScheduler(service_rate=2.0)
        srpt.on_arrival(req(0.0, 1.0))
        assert not srpt.should_preempt(req(0.0, 1.0), remaining=0.5, now=0.0)

    def test_preempted_request_requeues_on_remainder(self):
        srpt = SRPTScheduler(service_rate=2.0)
        victim = req(0.0, 4.0)
        victim.remaining_service = 0.25  # 0.5 work units left
        srpt.on_preempt(victim)
        srpt.on_arrival(req(0.0, 1.0))
        assert srpt.min_remaining() == pytest.approx(0.5)
        assert srpt.select(1.0) is victim

    def test_on_preempt_does_not_count_as_arrival(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        srpt = SRPTScheduler(service_rate=2.0).bind_metrics(registry)
        victim = req(0.0, 4.0)
        srpt.on_arrival(victim)
        srpt.select(0.0)
        before = registry.value("sched.srpt.arrivals")
        victim.remaining_service = 0.5
        srpt.on_preempt(victim)
        assert registry.value("sched.srpt.arrivals") == before


class TestNudge:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="small_threshold"):
            NudgeScheduler(small_threshold=-1.0)

    def test_small_swaps_ahead_of_large_tail(self):
        nudge = NudgeScheduler()
        large = req(0.0, 8.0, index=1)
        small = req(0.1, 1.0, index=2)
        nudge.on_arrival(large)
        nudge.on_arrival(small)
        assert nudge.swaps == [(2, 1)]
        assert nudge.select(0.2) is small
        assert nudge.select(0.2) is large

    def test_large_is_nudged_at_most_once(self):
        nudge = NudgeScheduler()
        large = req(0.0, 8.0, index=1)
        nudge.on_arrival(large)
        nudge.on_arrival(req(0.1, 1.0, index=2))  # swaps
        nudge.on_arrival(req(0.2, 1.0, index=3))  # tail is large again, but burned
        assert len(nudge.swaps) == 1
        order = [nudge.select(0.3).index for _ in range(3)]
        assert order == [2, 1, 3]

    def test_small_tail_never_swapped(self):
        nudge = NudgeScheduler()
        nudge.on_arrival(req(0.0, 1.0, index=1))
        nudge.on_arrival(req(0.1, 1.0, index=2))
        assert nudge.swaps == []
        assert nudge.select(0.2).index == 1

    def test_requeue_is_not_nudge_eligible(self):
        nudge = NudgeScheduler()
        large = req(0.0, 8.0, index=1)
        small = req(0.1, 1.0, index=2)
        nudge.on_arrival(large)
        nudge.on_requeue(small)  # joins the tail plainly
        assert nudge.swaps == []
        assert nudge.select(0.2) is large


class TestBoost:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="scale"):
            BoostScheduler(scale=0.0)

    def test_small_gets_larger_head_start(self):
        boost = BoostScheduler(scale=1.0)
        assert boost.key_of(req(5.0, 0.5)) < boost.key_of(req(5.0, 8.0))

    def test_serves_in_boosted_order(self):
        boost = BoostScheduler(scale=1.0)
        large = req(0.0, 8.0, index=1)   # key -0.125
        small = req(0.5, 1.0, index=2)   # key -0.5
        boost.on_arrival(large)
        boost.on_arrival(small)
        assert boost.select(1.0) is small
        assert boost.select(1.0) is large

    def test_head_start_is_bounded(self):
        boost = BoostScheduler(scale=1.0)
        early_large = req(0.0, 8.0, index=1)  # key -0.125
        late_small = req(2.0, 1.0, index=2)   # key 1.0: too late to jump
        boost.on_arrival(early_large)
        boost.on_arrival(late_small)
        assert boost.select(2.0) is early_large


class TestRegistry:
    def test_policy_tuples_compose(self):
        assert set(ALL_POLICIES) == set(SINGLE_SERVER_POLICIES) | set(
            TOPOLOGY_POLICIES
        )
        assert {"srpt", "nudge", "boost"} <= set(SINGLE_SERVER_POLICIES)
        assert {"srpt", "nudge", "boost", "fcfs"} == set(CLASSIFIER_FREE_POLICIES)
        assert "splitfarm" in TOPOLOGY_POLICIES

    def test_make_scheduler_builds_sized_family(self):
        srpt = make_scheduler("srpt", 3.0, 2.0, 0.5)
        assert isinstance(srpt, SRPTScheduler)
        assert srpt.service_rate == pytest.approx(5.0)
        assert isinstance(make_scheduler("nudge", 3.0, 2.0, 0.5), NudgeScheduler)
        boost = make_scheduler("boost", 3.0, 2.0, 0.5)
        assert isinstance(boost, BoostScheduler)
        assert boost.scale == pytest.approx(0.5)

    def test_topology_policies_redirect(self):
        with pytest.raises(ConfigurationError, match="two-server"):
            make_scheduler("splitfarm", 3.0, 2.0, 0.5)


class TestEndToEnd:
    def _run(self, policy, arrivals, sizes, rate=2.0):
        sim = Simulator()
        scheduler = make_scheduler(policy, rate / 2, rate / 2, 0.5)
        server = constant_rate_server(sim, rate, name=policy)
        driver = DeviceDriver(sim, server, scheduler)
        workload = Workload(
            np.asarray(arrivals, dtype=float),
            name="t",
            sizes=np.asarray(sizes, dtype=float),
        )
        WorkloadSource(sim, workload, driver).start()
        sim.run()
        return driver

    def test_srpt_preempts_long_job(self):
        # Long job alone at t=0; small arrives mid-service and overtakes.
        driver = self._run("srpt", [0.0, 1.0], [8.0, 1.0])
        assert driver.preemptions == 1
        small, large = sorted(driver.completed, key=lambda r: r.arrival)[::-1][:2]
        by_index = {r.index: r for r in driver.completed}
        assert by_index[1].completion < by_index[0].completion
        # Total work is conserved: makespan = total demand / rate.
        assert max(r.completion for r in driver.completed) == pytest.approx(4.5)

    def test_srpt_unit_demands_never_preempt(self):
        driver = self._run("srpt", [0.0, 0.1, 0.2, 0.3], [1.0] * 4)
        assert driver.preemptions == 0

    def test_all_single_server_policies_conserve(self):
        arrivals = np.sort(np.random.default_rng(3).uniform(0, 5, 40))
        sizes = np.random.default_rng(4).choice([0.5, 1.0, 6.0], size=40)
        for policy in SINGLE_SERVER_POLICIES:
            driver = self._run(policy, arrivals, sizes, rate=20.0)
            assert len(driver.completed) == 40, policy
