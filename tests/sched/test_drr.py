"""Tests for deficit round robin."""

import pytest

from repro.core.request import Request
from repro.exceptions import ConfigurationError, SchedulerError
from repro.sched.drr import DeficitRoundRobin
from repro.shaping import run_policy


def req(t=0.0):
    return Request(arrival=t)


class TestConstruction:
    def test_needs_flows(self):
        with pytest.raises(ConfigurationError):
            DeficitRoundRobin({})

    def test_positive_weights(self):
        with pytest.raises(ConfigurationError):
            DeficitRoundRobin({1: 0.0})

    def test_unknown_flow(self):
        drr = DeficitRoundRobin({1: 1.0})
        with pytest.raises(SchedulerError):
            drr.add(2, req())


class TestDispatch:
    def test_empty(self):
        assert DeficitRoundRobin({1: 1.0}).select() is None

    def test_single_flow_fifo(self):
        drr = DeficitRoundRobin({1: 1.0})
        requests = [req(i) for i in range(5)]
        for r in requests:
            drr.add(1, r)
        served = [drr.select()[1] for _ in range(5)]
        assert served == requests

    def test_conserves_requests(self):
        drr = DeficitRoundRobin({1: 1.0, 2: 3.0})
        for i in range(30):
            drr.add(1 + i % 2, req(i))
        count = 0
        while drr.select() is not None:
            count += 1
        assert count == 30
        assert len(drr) == 0

    def test_equal_weights_alternate_rounds(self):
        drr = DeficitRoundRobin({1: 1.0, 2: 1.0})
        for _ in range(10):
            drr.add(1, req())
            drr.add(2, req())
        first_10 = [drr.select()[0] for _ in range(10)]
        assert first_10.count(1) == 5

    def test_weighted_shares(self):
        drr = DeficitRoundRobin({1: 3.0, 2: 1.0})
        for _ in range(60):
            drr.add(1, req())
            drr.add(2, req())
        first_40 = [drr.select()[0] for _ in range(40)]
        share = first_40.count(1) / 40
        assert share == pytest.approx(0.75, abs=0.1)

    def test_work_conserving_with_idle_flow(self):
        drr = DeficitRoundRobin({1: 1.0, 2: 99.0})
        for _ in range(5):
            drr.add(1, req())
        assert [drr.select()[0] for _ in range(5)] == [1] * 5

    def test_fractional_quantum_flow_still_served(self):
        """A very low-weight flow accumulates deficit over rounds but is
        never starved while backlogged."""
        drr = DeficitRoundRobin({1: 100.0, 2: 1.0})
        for _ in range(300):
            drr.add(1, req())
        for _ in range(3):
            drr.add(2, req())
        served_flow2 = 0
        for _ in range(303):
            fid, _ = drr.select()
            served_flow2 += fid == 2
        assert served_flow2 == 3

    def test_backlog(self):
        drr = DeficitRoundRobin({1: 1.0})
        drr.add(1, req())
        assert drr.backlog(1) == 1


class TestDRRPolicy:
    @pytest.fixture
    def planned(self, bursty_workload):
        from repro.core.capacity import CapacityPlanner

        return CapacityPlanner(bursty_workload, 0.1).min_capacity(0.9)

    def test_end_to_end(self, bursty_workload, planned):
        result = run_policy(bursty_workload, "drr", planned, 10.0, 0.1)
        assert len(result.overall) == len(bursty_workload)
        assert result.fraction_within() >= 0.88

    def test_comparable_to_sfq(self, bursty_workload, planned):
        """DRR and SFQ realize the same proportional shares, so the
        recombined distribution matches across scheduler families."""
        drr = run_policy(bursty_workload, "drr", planned, 10.0, 0.1)
        sfq = run_policy(bursty_workload, "fairqueue", planned, 10.0, 0.1)
        assert drr.fraction_within() == pytest.approx(
            sfq.fraction_within(), abs=0.08
        )
