"""Demand-aware slack regressions: EDF's clock test and Miser's ledger.

These pin the two fixes that made the deferral machinery honest for
sized requests:

* EDF's ``_overflow_is_safe`` accumulates actual ``service_demand``
  (unit demand reduces to the seed-era ``(position + 2) * st`` bit for
  bit) and resolves knife-edge ties with the shared kernel EPS scaled
  into seconds — not the historical literal ``1e-12``;
* Miser stores slack in *work* units (``initial_slack`` over
  ``work_q1``) and burns ``service_demand`` per overflow dispatch, so a
  demand-8 overflow costs eight unit requests' worth of stored slack.
"""

import numpy as np
import pytest

from repro.check.differential import run_checked
from repro.core.request import Request
from repro.core.workload import Workload
from repro.perf.scalar import EPS
from repro.sched.classifier import OnlineRTTClassifier
from repro.sched.edf import EDFScheduler
from repro.sched.miser import MiserScheduler


def make_edf(cmin=10.0, delta=0.2, rate=None):
    return EDFScheduler(
        OnlineRTTClassifier(cmin, delta), service_rate=rate or cmin
    )


def sized_bimodal(seed=0, n=60, horizon=12.0):
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, horizon, n))
    sizes = rng.choice([1.0, 8.0], size=n, p=[0.85, 0.15])
    return Workload(arrivals, name="bimodal", sizes=sizes)


class TestEDFTieTolerance:
    def test_tolerance_scales_with_service_time(self):
        edf = make_edf(cmin=10.0)
        assert edf.tie_tolerance == pytest.approx(EPS * 0.1)
        fast = make_edf(cmin=1000.0)
        assert fast.tie_tolerance == pytest.approx(EPS * 0.001)

    def test_exact_tie_is_safe(self):
        # cmin=10, delta=0.2: one queued primary, one overflow.  At
        # now = deadline - 2*st the deferred finish hits the deadline
        # exactly — a tie, resolved permissively.
        edf = make_edf(cmin=10.0, delta=0.2)
        primary = Request(arrival=0.0)
        overflow = Request(arrival=0.0)
        edf.on_arrival(primary)
        edf.on_arrival(Request(arrival=0.0))  # fills Q1 (limit 2)
        edf.on_arrival(overflow)
        # deadline 0.2; three units of work deferred-finish at now+0.3.
        assert edf._overflow_is_safe(0.2 - 0.3) is True

    def test_sub_eps_overshoot_is_still_a_tie(self):
        edf = make_edf(cmin=10.0, delta=0.2)
        edf.on_arrival(Request(arrival=0.0))
        edf.on_arrival(Request(arrival=0.0))
        edf.on_arrival(Request(arrival=0.0))
        tie_now = 0.2 - 0.3
        assert edf._overflow_is_safe(tie_now + 0.25 * edf.tie_tolerance) is True

    def test_beyond_eps_overshoot_is_unsafe(self):
        edf = make_edf(cmin=10.0, delta=0.2)
        edf.on_arrival(Request(arrival=0.0))
        edf.on_arrival(Request(arrival=0.0))
        edf.on_arrival(Request(arrival=0.0))
        tie_now = 0.2 - 0.3
        assert edf._overflow_is_safe(tie_now + 1e-6) is False

    def test_overflow_demand_weighs_in(self):
        # A demand-5 overflow head defers the primary five slots, not
        # one: unsafe at a clock where a unit overflow is still safe.
        def build(demand):
            edf = make_edf(cmin=10.0, delta=0.1)  # limit 1
            edf.on_arrival(Request(arrival=1.0))  # primary, deadline 1.1
            edf.on_arrival(Request(arrival=1.0, service_demand=demand))
            return edf

        heavy, unit = build(5.0), build(1.0)
        assert heavy._q2[0].service_demand == 5.0
        # Unit overflow defers the primary to now + 0.2 (safe until 0.9);
        # the heavy one to now + 0.6 (safe only until 0.5).
        assert unit._overflow_is_safe(0.7) is True
        assert heavy._overflow_is_safe(0.4) is True
        assert heavy._overflow_is_safe(0.7) is False


class TestMiserWorkSlack:
    def test_slack_burns_by_demand(self):
        # cmin=10, delta=0.5 -> max_queue 5.  One primary queued
        # (work 1), slack = 5 - 1 = 4: a demand-4 overflow head fits
        # exactly; after serving it the slack is spent.
        miser = MiserScheduler(OnlineRTTClassifier(10.0, 0.5))
        primaries = [Request(arrival=0.0) for _ in range(5)]
        for r in primaries:
            miser.on_arrival(r)
        heavy = Request(arrival=0.0, service_demand=4.0)
        miser.on_arrival(heavy)  # overflow: Q1 at its count limit
        assert heavy.is_overflow
        # Serve four primaries out; one primary remains with stored
        # slack 0 (admitted at position 5 of 5).
        for _ in range(4):
            assert miser.select(0.0).is_primary
        # Remaining primary's slack is 0 < heavy's demand: must serve Q1.
        assert miser.select(0.0) is primaries[4]
        assert miser.select(0.0) is heavy

    def test_unit_demand_matches_count_slack(self):
        # With unit demands the work ledger reduces to the seed-era count
        # arithmetic: an overflow is served iff every queued primary was
        # admitted with slack >= 1.  A full burst leaves a zero-slack
        # primary (admitted at position 5 of 5), pinning the queue; after
        # the burst drains, a lone fresh primary (slack 4) lets the
        # leftover overflow jump ahead of it.
        miser = MiserScheduler(OnlineRTTClassifier(10.0, 0.5))  # limit 5
        burst = [Request(arrival=0.0) for _ in range(6)]
        for r in burst:
            miser.on_arrival(r)
        tail = burst[5]
        assert tail.is_overflow
        # min_slack is 0 (< 1): primaries must be served first.
        for _ in range(5):
            served = miser.select(0.0)
            assert served.is_primary
            served.completion = 0.1
            miser.on_completion(served)
        late = Request(arrival=1.0)
        miser.on_arrival(late)
        assert late.is_primary
        assert miser.min_slack == 4
        assert miser.select(1.0) is tail
        assert miser.slack_dispatches == 1
        assert miser.select(1.0) is late


class TestSlackConsistencyUnderBimodal:
    def test_miser_probe_clean(self):
        workload = sized_bimodal(seed=21)
        run = run_checked(workload, "miser", 6.0, 4.0, 0.5)
        assert run.ok, [str(v) for v in run.violations]

    def test_edf_probe_clean(self):
        workload = sized_bimodal(seed=22)
        run = run_checked(workload, "edf", 6.0, 4.0, 0.5)
        assert run.ok, [str(v) for v in run.violations]
