"""Tests for the classifier's work-bound admission mode."""

import pytest

from repro.core.request import QoSClass, Request
from repro.exceptions import ConfigurationError
from repro.sched.classifier import OnlineRTTClassifier


def req(index, demand=1.0, arrival=0.0):
    return Request(arrival=arrival, index=index, service_demand=demand)


class TestWorkMode:
    def test_admits_while_work_fits(self):
        # C*delta = 3.0 of work budget.
        clf = OnlineRTTClassifier(6.0, 0.5, mode="work")
        assert clf.classify(req(0, demand=2.0)) is QoSClass.PRIMARY
        assert clf.classify(req(1, demand=1.0)) is QoSClass.PRIMARY
        assert clf.classify(req(2, demand=0.5)) is QoSClass.OVERFLOW
        assert clf.work_q1 == pytest.approx(3.0)
        assert clf.len_q1 == 2

    def test_boundary_demand_admitted(self):
        clf = OnlineRTTClassifier(6.0, 0.5, mode="work")
        assert clf.classify(req(0, demand=3.0)) is QoSClass.PRIMARY

    def test_one_long_job_fills_the_budget(self):
        # Count mode would admit floor(3.0) = 3 of these; work mode sees
        # a single 2.5-unit job leaves no room for another.
        clf = OnlineRTTClassifier(6.0, 0.5, mode="work")
        assert clf.classify(req(0, demand=2.5)) is QoSClass.PRIMARY
        assert clf.classify(req(1, demand=2.5)) is QoSClass.OVERFLOW

    def test_completion_releases_work(self):
        clf = OnlineRTTClassifier(6.0, 0.5, mode="work")
        first = req(0, demand=3.0)
        clf.classify(first)
        blocked = req(1, demand=1.0)
        assert clf.classify(blocked) is QoSClass.OVERFLOW
        clf.on_completion(first)
        assert clf.work_q1 == pytest.approx(0.0)
        assert clf.classify(req(2, demand=1.0)) is QoSClass.PRIMARY

    def test_overflow_completion_releases_nothing(self):
        clf = OnlineRTTClassifier(2.0, 0.5, mode="work")
        clf.classify(req(0, demand=1.0))
        shed = req(1, demand=5.0)
        clf.classify(shed)
        assert shed.qos_class is QoSClass.OVERFLOW
        clf.on_completion(shed)
        assert clf.work_q1 == pytest.approx(1.0)
        assert clf.len_q1 == 1

    def test_fractional_budget_usable(self):
        # C*delta = 1.625: count mode floors to 1 whole slot; work mode
        # packs fractional demands into the raw budget.
        clf = OnlineRTTClassifier(3.25, 0.5, mode="work")
        assert clf.limit == 1
        assert clf.classify(req(0, demand=0.8)) is QoSClass.PRIMARY
        assert clf.classify(req(1, demand=0.8)) is QoSClass.PRIMARY
        assert clf.classify(req(2, demand=0.8)) is QoSClass.OVERFLOW

    def test_degraded_limit_shrinks_work_budget(self):
        clf = OnlineRTTClassifier(6.0, 0.5, mode="work")
        clf.set_limit(1)
        assert clf.classify(req(0, demand=1.0)) is QoSClass.PRIMARY
        assert clf.classify(req(1, demand=0.5)) is QoSClass.OVERFLOW

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown admission mode"):
            OnlineRTTClassifier(6.0, 0.5, mode="bytes")


class TestCountModeUnchanged:
    def test_default_mode_is_count(self):
        clf = OnlineRTTClassifier(6.0, 0.5)
        assert clf.mode == "count"

    def test_count_mode_ignores_demands(self):
        # The seed behavior: three unit slots regardless of size.
        clf = OnlineRTTClassifier(6.0, 0.5)
        for i in range(3):
            assert clf.classify(req(i, demand=100.0)) is QoSClass.PRIMARY
        assert clf.classify(req(3, demand=0.001)) is QoSClass.OVERFLOW

    def test_equivalent_on_unit_demands(self):
        count = OnlineRTTClassifier(6.0, 0.5)
        work = OnlineRTTClassifier(6.0, 0.5, mode="work")
        outcomes = [
            (count.classify(req(i)), work.classify(req(i))) for i in range(5)
        ]
        assert all(a is b for a, b in outcomes)
