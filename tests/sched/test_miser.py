"""Tests for the Miser scheduler (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.request import QoSClass, Request
from repro.core.slack import is_unconstrained
from repro.core.workload import Workload
from repro.sched.classifier import OnlineRTTClassifier
from repro.sched.miser import MiserScheduler
from repro.shaping import run_policy


def make_miser(capacity=30.0, delta=0.1):
    return MiserScheduler(OnlineRTTClassifier(capacity, delta))


def req(t=0.0):
    return Request(arrival=t)


class TestQueueing:
    def test_classifies_on_arrival(self):
        miser = make_miser(capacity=20.0, delta=0.1)  # limit = 2
        requests = [req() for _ in range(4)]
        for r in requests:
            miser.on_arrival(r)
        classes = [r.qos_class for r in requests]
        assert classes == [QoSClass.PRIMARY] * 2 + [QoSClass.OVERFLOW] * 2
        assert miser.pending() == 4

    def test_empty_select(self):
        assert make_miser().select(0.0) is None

    def test_q2_only_served_when_q1_empty(self):
        miser = make_miser(capacity=10.0, delta=0.1)  # limit = 1
        a, b = req(), req()
        miser.on_arrival(a)  # primary
        miser.on_arrival(b)  # overflow
        # Q1 head has slack 0 (limit 1, occupancy 1): Q1 must go first.
        assert miser.select(0.0) is a
        assert miser.select(0.0) is b


class TestSlackGating:
    def test_overflow_jumps_ahead_when_slack_allows(self):
        """With limit 3 and one queued primary (slack 2), the overflow
        request is served before the primary — Miser's defining move."""
        miser = make_miser(capacity=30.0, delta=0.1)  # limit = 3
        primary, overflow = req(), req()
        miser.on_arrival(primary)
        # With occupancy 1 of 3 the next arrivals are still primary; fill
        # the queue so the fourth arrival overflows into Q2.
        extra1, extra2 = req(), req()
        miser.on_arrival(extra1)
        miser.on_arrival(extra2)
        miser.on_arrival(overflow)  # queue full -> Q2
        # min slack = slack of extra2 = floor(3 - 3) = 0 -> Q1 first.
        assert miser.select(0.0) is primary
        miser.on_completion(primary)
        # After completion the remaining primaries have slacks 1 and 0
        # (their values were fixed at arrival), so Q2 still waits.
        assert miser.select(0.0) is extra1

    def test_slack_decrements_on_overflow_dispatch(self):
        miser = make_miser(capacity=40.0, delta=0.1)  # limit = 4
        p1 = req()
        miser.on_arrival(p1)  # slack = 3
        overflow = []
        for _ in range(3):
            miser.on_arrival(req())  # fill queue: slacks 2, 1, 0
        # Now occupancy 4 -> overflow
        for _ in range(2):
            r = req()
            miser.on_arrival(r)
            overflow.append(r)
        # min slack is 0 (the request admitted into the last slot), so
        # the primary queue must be served first.
        assert miser.select(0.0).qos_class is QoSClass.PRIMARY
        # The dispatched head (slack 3) left; the later admissions with
        # slacks 2, 1, 0 remain, so the minimum is still 0.
        assert miser.min_slack == 0

    def test_min_slack_unconstrained_when_empty(self):
        miser = make_miser()
        assert is_unconstrained(miser.min_slack)

    def test_slack_dispatch_counter(self):
        miser = make_miser(capacity=30.0, delta=0.1)  # limit 3
        miser.on_arrival(req())  # primary, slack 2
        for _ in range(2):
            miser.on_arrival(req())
        overflow = req()
        miser.on_arrival(overflow)  # Q2
        # slacks are 2, 1, 0 -> min 0: no slack dispatch possible.
        miser.select(0.0)
        assert miser.slack_dispatches == 0


class TestTelemetryAgainstHandTrace:
    """Algorithm 2 worked by hand, with the metrics checked at each step.

    Scheduler: limit 3 (capacity 30, delta 0.1).  Trace:

    ======  =======================  =============================
    step    action                   slack state (Q1 effective)
    ======  =======================  =============================
    1-3     p1, p2, p3 arrive        {2, 1, 0} (occupancies 1,2,3)
    4       o1 arrives (queue full)  Q2 = [o1], min slack 0
    5-6     serve+complete p1        {1, 0} -> len_q1 = 2
    7-8     serve+complete p2        {0} -> len_q1 = 1
    9       p4 arrives               slack floor(3-2)=1 -> {0, 1}
    10-11   serve+complete p3        {1} -> min slack 1
    12      select -> o1!            slack dispatch; decrement -> {0}
    13      serve p4                 tracker empty
    ======  =======================  =============================
    """

    def test_trace(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        miser = make_miser(capacity=30.0, delta=0.1)  # limit = 3
        miser.bind_metrics(registry)

        p1, p2, p3, p4, o1 = (req(t) for t in (0.0, 0.0, 0.0, 0.3, 0.1))
        for r in (p1, p2, p3):
            miser.on_arrival(r)
        miser.on_arrival(o1)
        assert o1.qos_class is QoSClass.OVERFLOW
        assert miser.min_slack == 0  # p3 was admitted into the last slot

        def complete(r, at):
            # What the server does before notifying the scheduler.
            r.completion = at
            miser.on_completion(r)

        assert miser.select(0.0) is p1
        complete(p1, 0.03)
        assert miser.select(0.0) is p2
        complete(p2, 0.06)

        miser.on_arrival(p4)  # occupancy 2 of 3 -> slack 1
        assert p4.qos_class is QoSClass.PRIMARY
        assert miser.min_slack == 0  # p3's arrival-time slack still queued

        assert miser.select(0.0) is p3
        complete(p3, 0.09)
        assert miser.min_slack == 1  # only p4 remains

        # The defining move: o1 overtakes the queued p4 on slack.
        assert miser.select(0.0) is o1
        assert miser.slack_dispatches == 1
        assert miser.min_slack == 0  # decrement_all charged p4

        assert miser.select(0.0) is p4
        assert miser.select(0.0) is None
        assert is_unconstrained(miser.min_slack)

        counters = registry.counters()
        assert counters["sched.miser.arrivals"] == 5
        assert counters["sched.miser.arrivals_q1"] == 4
        assert counters["sched.miser.arrivals_q2"] == 1
        assert counters["sched.miser.dispatches"] == 5
        assert counters["sched.miser.dispatches_q1"] == 4
        assert counters["sched.miser.dispatches_q2"] == 1
        assert counters["sched.miser.slack_dispatches"] == 1
        assert counters["sched.miser.deadline_misses"] == 0

    def test_deadline_miss_counted_on_completion(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        miser = make_miser(capacity=30.0, delta=0.1)
        miser.bind_metrics(registry)
        late = req(0.0)
        miser.on_arrival(late)
        assert late.qos_class is QoSClass.PRIMARY
        assert miser.select(0.0) is late
        late.completion = late.deadline + 1.0
        miser.on_completion(late)
        assert registry.value("sched.miser.deadline_misses") == 1


class TestEndToEnd:
    def test_all_served_exactly_once(self, bursty_workload):
        result = run_policy(bursty_workload, "miser", 40.0, 10.0, 0.1)
        assert len(result.overall) == len(bursty_workload)

    def test_overflow_faster_than_fairqueue(self, bursty_workload):
        """Miser's raison d'etre: the overflow class finishes earlier than
        under FairQueue at identical capacity (Figure 6c)."""
        miser = run_policy(bursty_workload, "miser", 40.0, 5.0, 0.1)
        fair = run_policy(bursty_workload, "fairqueue", 40.0, 5.0, 0.1)
        assert len(miser.overflow) > 0 and len(fair.overflow) > 0
        assert miser.overflow.stats.mean <= fair.overflow.stats.mean

    def test_no_primary_misses_with_delta_c_equal_cmin(self):
        """The paper's safety theorem: delta_C = Cmin guarantees zero
        primary deadline misses under Miser."""
        for seed in range(5):
            gen = np.random.default_rng(seed)
            floor = gen.uniform(0, 10, 200)
            burst = 3.0 + gen.uniform(0, 0.3, 150)
            w = Workload(np.sort(np.concatenate([floor, burst])))
            cmin = 40.0
            result = run_policy(w, "miser", cmin, cmin, 0.1)
            assert result.primary_misses == 0

    def test_few_primary_misses_with_small_delta_c(self, bursty_workload):
        """With the paper's small delta_C = 1/delta, misses are rare."""
        result = run_policy(bursty_workload, "miser", 40.0, 10.0, 0.1)
        assert result.primary_misses <= 0.02 * len(result.primary)

    def test_work_conserving_same_makespan_as_fcfs(self, bursty_workload):
        """Miser never idles while requests are pending, so on one server
        its last completion instant equals FCFS's at the same capacity."""
        from repro.sched.registry import make_scheduler
        from repro.server.constant_rate import constant_rate_server
        from repro.server.driver import DeviceDriver
        from repro.sim.engine import Simulator
        from repro.sim.source import WorkloadSource

        def makespan(policy):
            sim = Simulator()
            driver = DeviceDriver(
                sim,
                constant_rate_server(sim, 50.0),
                make_scheduler(policy, 40.0, 10.0, 0.1),
            )
            WorkloadSource(sim, bursty_workload, driver).start()
            sim.run()
            return max(r.completion for r in driver.completed)

        assert makespan("miser") == pytest.approx(makespan("fcfs"))
