"""Tests for the EDF (clock-slack) scheduler."""

import pytest

from repro.core.request import QoSClass, Request
from repro.exceptions import ConfigurationError
from repro.sched.classifier import OnlineRTTClassifier
from repro.sched.edf import EDFScheduler
from repro.shaping import run_policy


def make_edf(cmin=30.0, delta=0.1, rate=None):
    return EDFScheduler(
        OnlineRTTClassifier(cmin, delta), service_rate=rate or cmin
    )


def req(t=0.0):
    return Request(arrival=t)


class TestBasics:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="service_rate"):
            EDFScheduler(OnlineRTTClassifier(10.0, 0.1), service_rate=0.0)

    def test_empty(self):
        assert make_edf().select(0.0) is None

    def test_classifies(self):
        edf = make_edf(cmin=20.0, delta=0.1)  # limit 2
        requests = [req() for _ in range(3)]
        for r in requests:
            edf.on_arrival(r)
        assert [r.qos_class for r in requests] == [
            QoSClass.PRIMARY,
            QoSClass.PRIMARY,
            QoSClass.OVERFLOW,
        ]
        assert edf.pending() == 3

    def test_q1_served_when_no_time_slack(self):
        edf = make_edf(cmin=10.0, delta=0.1)  # service 0.1 s, limit 1
        primary, overflow = req(0.0), req(0.0)
        edf.on_arrival(primary)
        edf.on_arrival(overflow)
        # At t=0.0 deferring the primary to t=0.2 would miss t=0.1.
        assert edf.select(0.0) is primary

    def test_overflow_served_when_clock_allows(self):
        edf = make_edf(cmin=30.0, delta=0.1)  # service 1/30 s, limit 3
        primary = req(0.0)
        edf.on_arrival(primary)  # deadline 0.1
        overflow = req(0.0)
        # Force the second request to Q2 by filling the classifier.
        edf.classifier.len_q1 = edf.classifier.limit
        edf.on_arrival(overflow)
        assert overflow.qos_class is QoSClass.OVERFLOW
        # At t=0: serving Q2 first finishes the primary by 2/30 < 0.1.
        assert edf.select(0.0) is overflow
        # At t=0.05: 0.05 + 2/30 = 0.117 > 0.1 -> primary must go.
        edf.on_arrival(overflow2 := req(0.05))
        assert overflow2.qos_class is QoSClass.OVERFLOW
        assert edf.select(0.05) is primary

    def test_exploits_slack_miser_forgets(self):
        """A primary that waited keeps its absolute deadline under EDF;
        Miser's stored slack only shrinks.  Construct a state where the
        clock still allows one overflow quantum."""
        edf = make_edf(cmin=100.0, delta=0.1)  # service 10 ms, limit 10
        primary = req(0.0)  # deadline 0.1
        edf.on_arrival(primary)
        edf.classifier.len_q1 = edf.classifier.limit  # saturate admission
        overflow = req(0.01)
        edf.on_arrival(overflow)
        # At t = 0.07: 0.07 + 2 * 0.01 = 0.09 <= 0.1 -> overflow first.
        assert edf.select(0.07) is overflow

    def test_work_conserving_order(self):
        edf = make_edf(cmin=10.0, delta=0.1)
        a = req(0.0)
        edf.on_arrival(a)
        assert edf.select(0.0) is a
        assert edf.select(0.0) is None


class TestEndToEnd:
    def test_runs_under_run_policy(self, bursty_workload):
        result = run_policy(bursty_workload, "edf", 40.0, 10.0, 0.1)
        assert len(result.overall) == len(bursty_workload)

    def test_no_primary_misses(self, bursty_workload):
        """EDF defers Q2 whenever a primary deadline is at risk at the
        true service rate, so primaries never miss."""
        result = run_policy(bursty_workload, "edf", 40.0, 10.0, 0.1)
        assert result.primary_misses == 0

    def test_overflow_not_worse_than_fairqueue(self, bursty_workload):
        edf = run_policy(bursty_workload, "edf", 40.0, 5.0, 0.1)
        fair = run_policy(bursty_workload, "fairqueue", 40.0, 5.0, 0.1)
        assert edf.overflow.stats.mean <= fair.overflow.stats.mean * 1.1
