"""Tests for the fair-queuing substrate (SFQ / WF²Q+)."""

import pytest

from repro.core.request import Request
from repro.exceptions import ConfigurationError, SchedulerError
from repro.sched.fair import FairQueue


def req(t=0.0):
    return Request(arrival=t)


class TestConstruction:
    def test_needs_flows(self):
        with pytest.raises(ConfigurationError, match="flow"):
            FairQueue({})

    def test_positive_weights(self):
        with pytest.raises(ConfigurationError, match="weight"):
            FairQueue({1: 0.0})

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError, match="variant"):
            FairQueue({1: 1.0}, variant="drr")


class TestBasicDispatch:
    def test_empty_select(self):
        assert FairQueue({1: 1.0}).select() is None

    def test_single_flow_fifo(self):
        q = FairQueue({1: 1.0})
        requests = [req(i) for i in range(5)]
        for r in requests:
            q.add(1, r)
        order = [q.select()[1] for _ in range(5)]
        assert order == requests

    def test_unknown_flow_rejected(self):
        q = FairQueue({1: 1.0})
        with pytest.raises(SchedulerError, match="unknown flow"):
            q.add(2, req())

    def test_non_positive_cost_rejected(self):
        q = FairQueue({1: 1.0})
        with pytest.raises(SchedulerError, match="cost"):
            q.add(1, req(), cost=0.0)

    def test_len_and_backlog(self):
        q = FairQueue({1: 1.0, 2: 1.0})
        q.add(1, req())
        q.add(1, req())
        q.add(2, req())
        assert len(q) == 3
        assert q.backlog(1) == 2
        assert q.backlog(2) == 1


@pytest.mark.parametrize("variant", ["sfq", "wf2q"])
class TestProportionalSharing:
    def test_equal_weights_alternate(self, variant):
        q = FairQueue({1: 1.0, 2: 1.0}, variant=variant)
        for _ in range(6):
            q.add(1, req())
            q.add(2, req())
        flows = [q.select()[0] for _ in range(12)]
        # Perfect interleaving under equal weights and backlog.
        assert flows.count(1) == 6
        for pair in zip(flows[::2], flows[1::2]):
            assert set(pair) == {1, 2}

    def test_weighted_shares(self, variant):
        """Flow with weight 3 gets ~3x the service of weight 1 while both
        stay backlogged — the defining fair-queuing property."""
        q = FairQueue({1: 3.0, 2: 1.0}, variant=variant)
        for _ in range(40):
            q.add(1, req())
            q.add(2, req())
        first_20 = [q.select()[0] for _ in range(20)]
        share = first_20.count(1) / 20
        assert share == pytest.approx(0.75, abs=0.11)

    def test_work_conserving(self, variant):
        """An idle flow's capacity flows to the backlogged one."""
        q = FairQueue({1: 9.0, 2: 1.0}, variant=variant)
        for _ in range(10):
            q.add(2, req())
        flows = [q.select()[0] for _ in range(10)]
        assert flows == [2] * 10

    def test_no_stale_credit_after_idle(self, variant):
        """A flow that was idle must not catch up on missed service: after
        its return the shares are proportional again, not compensatory."""
        q = FairQueue({1: 1.0, 2: 1.0}, variant=variant)
        for _ in range(10):
            q.add(1, req())
        for _ in range(10):
            q.select()
        # Flow 2 wakes up; both now backlogged.
        for _ in range(10):
            q.add(1, req())
            q.add(2, req())
        first_10 = [q.select()[0] for _ in range(10)]
        # Flow 2 must not monopolize: it gets at most ~half + tag slack.
        assert first_10.count(2) <= 6


class TestFairnessBound:
    @pytest.mark.parametrize("variant", ["sfq", "wf2q"])
    def test_service_lag_bounded(self, variant):
        """Over any backlogged prefix, each flow's service deviates from
        its weighted share by at most a constant number of requests."""
        weights = {1: 2.0, 2: 1.0, 3: 1.0}
        q = FairQueue(weights, variant=variant)
        for _ in range(60):
            for fid in weights:
                q.add(fid, req())
        served = {fid: 0 for fid in weights}
        total_weight = sum(weights.values())
        for n in range(1, 121):
            fid, _ = q.select()
            served[fid] += 1
            for flow, w in weights.items():
                expected = n * w / total_weight
                assert abs(served[flow] - expected) <= 2.0


class TestVirtualTimeMonotone:
    def test_tags_do_not_regress(self):
        q = FairQueue({1: 1.0, 2: 2.0})
        for i in range(20):
            q.add(1 + i % 2, req())
            if i % 3 == 0:
                q.select()
        # Internal invariant: virtual time is non-decreasing across ops.
        v = q._virtual
        q.select()
        assert q._virtual >= v
