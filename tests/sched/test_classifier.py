"""Tests for the online RTT classifier."""

import pytest

from repro.core.request import QoSClass, Request
from repro.exceptions import ConfigurationError
from repro.sched.classifier import OnlineRTTClassifier


def make_request(t=0.0):
    return Request(arrival=t)


class TestClassifier:
    def test_limit_is_floor_of_c_delta(self):
        assert OnlineRTTClassifier(100.0, 0.05).limit == 5
        assert OnlineRTTClassifier(119.0, 0.05).limit == 5  # floor(5.95)
        assert OnlineRTTClassifier(10.0, 0.05).limit == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OnlineRTTClassifier(0.0, 0.1)
        with pytest.raises(ConfigurationError):
            OnlineRTTClassifier(10.0, 0.0)

    def test_admits_until_full(self):
        clf = OnlineRTTClassifier(30.0, 0.1)  # limit = 3
        outcomes = [clf.classify(make_request()) for _ in range(5)]
        assert outcomes == [QoSClass.PRIMARY] * 3 + [QoSClass.OVERFLOW] * 2
        assert clf.len_q1 == 3

    def test_deadline_stamped_on_primary(self):
        clf = OnlineRTTClassifier(30.0, 0.1)
        request = make_request(t=2.0)
        clf.classify(request)
        assert request.deadline == pytest.approx(2.1)

    def test_overflow_has_no_deadline(self):
        clf = OnlineRTTClassifier(10.0, 0.1)  # limit = 1
        clf.classify(make_request())
        overflow = make_request()
        clf.classify(overflow)
        assert overflow.deadline is None

    def test_completion_frees_slot(self):
        clf = OnlineRTTClassifier(10.0, 0.1)  # limit = 1
        first = make_request()
        clf.classify(first)
        assert clf.classify(make_request()) is QoSClass.OVERFLOW
        clf.on_completion(first)
        assert clf.len_q1 == 0
        assert clf.classify(make_request()) is QoSClass.PRIMARY

    def test_overflow_completion_does_not_decrement(self):
        clf = OnlineRTTClassifier(10.0, 0.1)
        clf.classify(make_request())
        overflow = make_request()
        clf.classify(overflow)
        clf.on_completion(overflow)
        assert clf.len_q1 == 1

    def test_underflow_detected(self):
        clf = OnlineRTTClassifier(10.0, 0.1)
        primary = make_request()
        clf.classify(primary)
        clf.on_completion(primary)
        with pytest.raises(ConfigurationError, match="underflow"):
            clf.on_completion(primary)

    def test_fraction_primary(self):
        clf = OnlineRTTClassifier(20.0, 0.1)  # limit = 2
        for _ in range(4):
            clf.classify(make_request())
        assert clf.fraction_primary == pytest.approx(0.5)

    def test_fraction_primary_empty(self):
        assert OnlineRTTClassifier(10.0, 0.1).fraction_primary == 1.0

    def test_max_queue_property(self):
        assert OnlineRTTClassifier(119.0, 0.05).max_queue == pytest.approx(5.95)
