"""Tests for the FCFS scheduler and the policy registry."""

import pytest

from repro.core.request import Request
from repro.exceptions import ConfigurationError
from repro.sched.fair import FairQueueScheduler
from repro.sched.fcfs import FCFSScheduler
from repro.sched.miser import MiserScheduler
from repro.sched.registry import ALL_POLICIES, SINGLE_SERVER_POLICIES, make_scheduler


class TestFCFS:
    def test_fifo_order(self):
        sched = FCFSScheduler()
        requests = [Request(arrival=float(i)) for i in range(5)]
        for r in requests:
            sched.on_arrival(r)
        assert [sched.select(0.0) for _ in range(5)] == requests

    def test_empty_select(self):
        assert FCFSScheduler().select(0.0) is None

    def test_pending(self):
        sched = FCFSScheduler()
        sched.on_arrival(Request(arrival=0.0))
        assert sched.pending() == 1
        assert len(sched) == 1
        sched.select(0.0)
        assert sched.pending() == 0

    def test_on_completion_noop(self):
        FCFSScheduler().on_completion(Request(arrival=0.0))


class TestRegistry:
    def test_policy_lists_consistent(self):
        assert set(SINGLE_SERVER_POLICIES) < set(ALL_POLICIES)
        assert "split" in ALL_POLICIES

    def test_fcfs(self):
        assert isinstance(make_scheduler("fcfs", 10, 1, 0.1), FCFSScheduler)

    def test_fairqueue_variants(self):
        sfq = make_scheduler("fairqueue", 10, 1, 0.1)
        wf2q = make_scheduler("wf2q", 10, 1, 0.1)
        assert isinstance(sfq, FairQueueScheduler)
        assert isinstance(wf2q, FairQueueScheduler)
        assert sfq._queue.variant == "sfq"
        assert wf2q._queue.variant == "wf2q"

    def test_miser(self):
        sched = make_scheduler("miser", 10, 1, 0.1)
        assert isinstance(sched, MiserScheduler)
        assert sched.classifier.capacity == 10

    def test_split_redirects_to_topology(self):
        with pytest.raises(ConfigurationError, match="two-server"):
            make_scheduler("split", 10, 1, 0.1)

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            make_scheduler("lifo", 10, 1, 0.1)

    def test_classifier_uses_cmin_not_total(self):
        """Decomposition is defined by Cmin; the extra delta_C only adds
        service rate (Section 3)."""
        sched = make_scheduler("fairqueue", 100, 50, 0.1)
        assert sched.classifier.capacity == 100
        assert sched.classifier.limit == 10
