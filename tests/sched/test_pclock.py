"""Tests for the pClock-style arrival-curve scheduler."""

import pytest

from repro.core.request import Request
from repro.exceptions import ConfigurationError, SchedulerError
from repro.sched.pclock import FlowSLA, PClockScheduler, feasible
from repro.server.constant_rate import constant_rate_server
from repro.server.driver import DeviceDriver
from repro.sim.engine import Simulator


def req(t, client):
    return Request(arrival=t, client_id=client)


class TestFlowSLA:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlowSLA(sigma=0.5, rho=10.0, delta=0.1)
        with pytest.raises(ConfigurationError):
            FlowSLA(sigma=1.0, rho=0.0, delta=0.1)
        with pytest.raises(ConfigurationError):
            FlowSLA(sigma=1.0, rho=10.0, delta=0.0)


class TestTagging:
    def test_conforming_request_gets_delta(self):
        sched = PClockScheduler({1: FlowSLA(sigma=5, rho=10.0, delta=0.1)})
        r = req(1.0, 1)
        sched.on_arrival(r)
        assert r.deadline == pytest.approx(1.1)

    def test_burst_within_sigma_keeps_delta(self):
        sched = PClockScheduler({1: FlowSLA(sigma=3, rho=10.0, delta=0.1)})
        rs = [req(0.0, 1) for _ in range(3)]
        for r in rs:
            sched.on_arrival(r)
        assert all(r.deadline == pytest.approx(0.1) for r in rs)

    def test_excess_deadline_deferred(self):
        sched = PClockScheduler({1: FlowSLA(sigma=2, rho=10.0, delta=0.1)})
        rs = [req(0.0, 1) for _ in range(4)]
        for r in rs:
            sched.on_arrival(r)
        # 3rd and 4th requests exceed the burst: bucket owes 1 and 2
        # tokens, refilled at 10/s -> +0.1 s and +0.2 s.
        assert rs[2].deadline == pytest.approx(0.2)
        assert rs[3].deadline == pytest.approx(0.3)

    def test_bucket_refills_over_time(self):
        sched = PClockScheduler({1: FlowSLA(sigma=1, rho=10.0, delta=0.1)})
        sched.on_arrival(req(0.0, 1))
        later = req(0.2, 1)  # 2 tokens' worth of time elapsed (cap 1)
        sched.on_arrival(later)
        assert later.deadline == pytest.approx(0.3)
        assert sched.tokens(1) == pytest.approx(0.0)

    def test_unknown_flow_best_effort(self):
        sched = PClockScheduler({1: FlowSLA(sigma=1, rho=10.0, delta=0.1)})
        stranger = req(0.0, 99)
        sched.on_arrival(stranger)
        assert stranger.deadline is None

    def test_unknown_flow_strict(self):
        sched = PClockScheduler(
            {1: FlowSLA(sigma=1, rho=10.0, delta=0.1)}, strict=True
        )
        with pytest.raises(SchedulerError, match="unknown flow"):
            sched.on_arrival(req(0.0, 99))

    def test_requires_flows(self):
        with pytest.raises(ConfigurationError):
            PClockScheduler({})

    def test_tokens_unknown_flow(self):
        sched = PClockScheduler({1: FlowSLA(sigma=1, rho=10.0, delta=0.1)})
        with pytest.raises(SchedulerError):
            sched.tokens(9)


class TestDispatchOrder:
    def test_earliest_deadline_first(self):
        sched = PClockScheduler({
            1: FlowSLA(sigma=5, rho=10.0, delta=0.5),
            2: FlowSLA(sigma=5, rho=10.0, delta=0.1),
        })
        slow = req(0.0, 1)   # deadline 0.5
        fast = req(0.0, 2)   # deadline 0.1
        sched.on_arrival(slow)
        sched.on_arrival(fast)
        assert sched.select(0.0) is fast
        assert sched.select(0.0) is slow

    def test_best_effort_always_last(self):
        sched = PClockScheduler({1: FlowSLA(sigma=5, rho=10.0, delta=5.0)})
        stranger = req(0.0, 9)
        tenant = req(0.1, 1)
        sched.on_arrival(stranger)
        sched.on_arrival(tenant)
        assert sched.select(0.2) is tenant

    def test_empty(self):
        sched = PClockScheduler({1: FlowSLA(sigma=1, rho=1.0, delta=1.0)})
        assert sched.select(0.0) is None
        assert sched.pending() == 0


class TestIsolation:
    def test_conforming_flow_protected_from_flooder(self):
        """The defining pClock property: flow 1 stays within its curve;
        flow 2 floods far beyond its reservation.  Flow 1 still meets its
        latency bound."""
        sim = Simulator()
        flows = {
            1: FlowSLA(sigma=2, rho=50.0, delta=0.1),
            2: FlowSLA(sigma=2, rho=50.0, delta=0.1),
        }
        capacity = 120.0
        assert feasible(flows, capacity)
        sched = PClockScheduler(flows)
        driver = DeviceDriver(sim, constant_rate_server(sim, capacity), sched)

        # Flow 1: conforming, 40 IOPS paced.
        for i in range(40):
            t = 0.025 * i
            sim.schedule(t, lambda t=t: driver.on_arrival(req(t, 1)))
        # Flow 2: a 300-request instantaneous flood at t=0.1.
        for _ in range(300):
            sim.schedule(0.1, lambda: driver.on_arrival(req(0.1, 2)))
        sim.run()

        flow1 = [r for r in driver.completed if r.client_id == 1]
        assert len(flow1) == 40
        worst = max(r.response_time for r in flow1)
        assert worst <= 0.1 + 1e-9


class TestFeasibility:
    def test_rate_overload_infeasible(self):
        flows = {1: FlowSLA(sigma=1, rho=60.0, delta=0.1),
                 2: FlowSLA(sigma=1, rho=60.0, delta=0.1)}
        assert not feasible(flows, 100.0)

    def test_burst_overload_infeasible(self):
        flows = {1: FlowSLA(sigma=50, rho=10.0, delta=0.1)}
        # Residual capacity 100: 50 > 100 * 0.1.
        assert not feasible(flows, 100.0)

    def test_feasible_case(self):
        flows = {1: FlowSLA(sigma=5, rho=40.0, delta=0.1),
                 2: FlowSLA(sigma=5, rho=40.0, delta=0.2)}
        assert feasible(flows, 100.0)
