"""End-to-end telemetry checks: traces reconcile with run results.

The acceptance bar for the observability layer: the JSONL trace written
by an instrumented run must agree with the ``PolicyRunResult`` computed
from the same simulation — sampled queue depths match the counters at
every tick, and the final counters match the result's totals.
"""

import pytest

from repro.obs import MetricsRegistry, depth_reconciles, read_jsonl
from repro.shaping import run_policy


@pytest.fixture(scope="module")
def workload():
    from repro.traces.library import websearch

    return websearch(duration=6.0, seed=23)


def run_observed(workload, policy, delta_c=25.0):
    registry = MetricsRegistry()
    result = run_policy(
        workload,
        policy,
        cmin=120.0,
        delta_c=delta_c,
        delta=0.05,
        metrics=registry,
        sample_interval=0.25,
    )
    return registry, result


class TestSingleServerReconciliation:
    @pytest.mark.parametrize("policy", ["fcfs", "fairqueue", "wf2q", "miser"])
    def test_depth_reconciles_at_every_sample(self, workload, policy):
        registry, result = run_observed(workload, policy)
        samples = result.telemetry.samples
        assert len(samples) > 10
        assert depth_reconciles(samples)

    @pytest.mark.parametrize("policy", ["fcfs", "fairqueue", "wf2q", "miser"])
    def test_final_counters_match_result(self, workload, policy):
        registry, result = run_observed(workload, policy)
        n = len(workload)
        assert registry.value("driver.arrivals") == n
        assert registry.value("driver.dispatches") == n
        assert registry.value("driver.completions") == n
        assert registry.value("driver.completions") == len(result.overall)
        assert registry.value("driver.deadline_misses") == result.primary_misses
        name = f"sched.{policy}.deadline_misses"
        assert registry.value(name) == result.primary_misses

    def test_scheduler_counters_split_by_class(self, workload):
        registry, result = run_observed(workload, "miser")
        arr = registry.value("sched.miser.arrivals")
        assert arr == len(workload)
        assert (
            registry.value("sched.miser.arrivals_q1")
            + registry.value("sched.miser.arrivals_q2")
            == arr
        )
        assert registry.value("sched.miser.arrivals_q1") == len(result.primary)
        assert registry.value("sched.miser.arrivals_q2") == len(result.overflow)

    def test_final_sample_shows_drained_system(self, workload):
        registry, result = run_observed(workload, "miser")
        last = result.telemetry.samples[-1]
        assert last["queue_depth"] == 0
        assert last["completions"] == len(workload)


class TestSplitReconciliation:
    def test_both_drivers_reconcile(self, workload):
        registry, result = run_observed(workload, "split", delta_c=40.0)
        samples = result.telemetry.samples
        assert depth_reconciles(samples, prefix="q1_")
        assert depth_reconciles(samples, prefix="q2_")

    def test_routing_counters_partition_the_stream(self, workload):
        registry, result = run_observed(workload, "split", delta_c=40.0)
        q1 = registry.value("split.routed_q1")
        q2 = registry.value("split.routed_q2")
        assert q1 + q2 == len(workload)
        assert registry.value("q1.driver.arrivals") == q1
        assert registry.value("q2.driver.arrivals") == q2


class TestJsonlTrace:
    def test_exported_trace_reconciles_with_result(self, workload, tmp_path):
        registry, result = run_observed(workload, "miser")
        path = tmp_path / "run.jsonl"
        result.telemetry.export(path)
        records = read_jsonl(path)

        meta = [r for r in records if r["type"] == "meta"]
        assert len(meta) == 1
        assert meta[0]["policy"] == "miser"
        assert meta[0]["requests"] == len(workload)

        samples = [r for r in records if r["type"] == "sample"]
        assert depth_reconciles(samples)

        by_name = {r["name"]: r for r in records if r["type"] == "metric"}
        assert by_name["driver.completions"]["value"] == len(result.overall)
        assert (
            by_name["driver.deadline_misses"]["value"] == result.primary_misses
        )

    def test_cli_metrics_flag(self, workload, tmp_path, capsys):
        from repro.experiments.runner import main

        path = tmp_path / "cli.jsonl"
        code = main(
            [
                "--metrics",
                str(path),
                "--duration",
                "4",
                "--metrics-interval",
                "0.5",
            ]
        )
        assert code == 0
        records = read_jsonl(path)
        samples = [r for r in records if r["type"] == "sample"]
        assert depth_reconciles(samples)
        by_name = {r["name"]: r for r in records if r["type"] == "metric"}
        assert (
            by_name["driver.arrivals"]["value"]
            == by_name["driver.completions"]["value"]
        )
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "driver.arrivals" in out

    def test_cli_summarize_flag(self, workload, tmp_path, capsys):
        from repro.experiments.runner import main

        registry, result = run_observed(workload, "miser")
        path = tmp_path / "run.jsonl"
        result.telemetry.export(path)
        assert main(["--summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "sched.miser.slack_dispatches" in out


class TestUnobservedRuns:
    def test_no_telemetry_by_default(self, workload):
        result = run_policy(workload, "miser", cmin=120.0, delta_c=25.0, delta=0.05)
        assert result.telemetry is None

    def test_sampling_without_registry(self, workload):
        result = run_policy(
            workload,
            "miser",
            cmin=120.0,
            delta_c=25.0,
            delta=0.05,
            sample_interval=0.5,
        )
        telemetry = result.telemetry
        assert telemetry is not None
        assert len(telemetry.samples) > 5
        # No registry: counter columns are absent, state probes present.
        assert "arrivals" not in telemetry.samples[0]
        assert "queue_depth" in telemetry.samples[0]
