"""Tests for the JSONL exporter and the summary pretty-printer."""

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry, export_run, read_jsonl, summarize, summarize_file


def make_registry():
    reg = MetricsRegistry()
    reg.counter("driver.arrivals").inc(10)
    reg.gauge("depth").set(3)
    h = reg.histogram("rt", edges=[0.1, 0.5])
    h.observe(0.05)
    h.observe(0.9)
    return reg


class TestExportRun:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        samples = [{"t": 0.5, "queue_depth": 2}, {"t": 1.0, "queue_depth": 0}]
        lines = export_run(path, make_registry(), samples, meta={"policy": "miser"})
        # 1 meta + 2 samples + 3 metrics.
        assert lines == 6
        records = read_jsonl(path)
        assert len(records) == 6
        assert records[0] == {"type": "meta", "policy": "miser"}
        assert records[1] == {"type": "sample", "t": 0.5, "queue_depth": 2}
        metric_names = {r["name"] for r in records if r["type"] == "metric"}
        assert metric_names == {"driver.arrivals", "depth", "rt"}

    def test_non_finite_sample_values_become_null(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_run(
            path,
            MetricsRegistry(),
            [{"t": 0.0, "min_slack": float("nan"), "x": float("inf")}],
        )
        sample = read_jsonl(path)[1]
        assert sample["min_slack"] is None
        assert sample["x"] is None

    def test_meta_only(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert export_run(path, MetricsRegistry()) == 1


class TestReadJsonl:
    def test_bad_json_reported_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ConfigurationError, match="2: not valid JSON"):
            read_jsonl(path)

    def test_missing_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1.0}\n')
        with pytest.raises(ConfigurationError, match="'type' key"):
            read_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        path.write_text('{"type": "meta"}\n\n{"type": "sample", "t": 0}\n')
        assert len(read_jsonl(path)) == 2


class TestSummarize:
    def test_sections_present(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_run(
            path,
            make_registry(),
            [{"t": 0.5, "queue_depth": 2}, {"t": 1.0, "queue_depth": 0}],
            meta={"policy": "miser", "workload": "toy"},
        )
        text = summarize_file(path)
        assert "policy=miser" in text
        assert "driver.arrivals" in text
        assert "histogram rt" in text
        assert "queue_depth" in text
        assert "2 ticks" in text

    def test_null_only_column_renders_dashes(self):
        text = summarize(
            [{"type": "sample", "t": 0.0, "min_slack": None}]
        )
        assert "min_slack" in text
        assert "-" in text

    def test_empty_stream(self):
        assert summarize([]) == "no telemetry records"
