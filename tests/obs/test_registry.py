"""Tests for metric instruments and the pluggable registry."""

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    validate_edges,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError, match="negative"):
            Counter("x").inc(-1.0)

    def test_snapshot(self):
        c = Counter("driver.arrivals")
        c.inc()
        assert c.snapshot() == {
            "name": "driver.arrivals",
            "kind": "counter",
            "value": 1.0,
        }


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 4.0
        assert g.snapshot()["kind"] == "gauge"


class TestHistogram:
    def test_cumulative_buckets(self):
        h = Histogram("rt", edges=[0.1, 0.5])
        for v in (0.05, 0.1, 0.3, 0.9):
            h.observe(v)
        snap = h.snapshot()
        # bisect_left: values == edge land in that edge's bucket.
        assert snap["counts"] == [2, 1, 1]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(1.35)

    def test_bad_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", edges=[])
        with pytest.raises(ConfigurationError):
            Histogram("h", edges=[2.0, 1.0])


class TestValidateEdges:
    def test_empty(self):
        with pytest.raises(ConfigurationError, match="at least one edge"):
            validate_edges([])

    def test_not_increasing(self):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            validate_edges([1.0, 1.0])

    def test_context_in_message(self):
        with pytest.raises(ConfigurationError, match="figure bins"):
            validate_edges([], context="figure bins")

    def test_ok(self):
        validate_edges([0.1, 0.2, 0.3])


class TestMetricsRegistry:
    def test_memoizes_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.gauge("a")

    def test_value_defaults_to_zero(self):
        assert MetricsRegistry().value("never.registered") == 0.0

    def test_value_rejects_histogram(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=[1.0])
        with pytest.raises(ConfigurationError, match="histogram"):
            reg.value("h")

    def test_counters_view(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc()
        reg.gauge("g").set(9)
        assert reg.counters() == {"a": 1.0, "b": 2.0}

    def test_snapshot_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.counter("a")
        assert [s["name"] for s in reg.snapshot()] == ["a", "z"]

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled is True


class TestNullRegistry:
    def test_disabled(self):
        assert NULL_REGISTRY.enabled is False

    def test_shared_singletons(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.gauge("a") is reg.gauge("b")
        assert reg.histogram("a", [1.0]) is reg.histogram("b", [2.0])

    def test_noop_instruments(self):
        reg = NullRegistry()
        c = reg.counter("a")
        c.inc(100)
        assert c.value == 0.0
        g = reg.gauge("a")
        g.set(5)
        g.inc()
        assert g.value == 0.0
        h = reg.histogram("a", [1.0])
        h.observe(0.5)
        assert h.count == 0

    def test_registers_nothing(self):
        reg = NullRegistry()
        reg.counter("a")
        reg.gauge("b")
        assert len(reg) == 0
        assert reg.snapshot() == []
