"""Tests for the periodic sampler and the standard probe set."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry, Sampler, attach_standard_probes, depth_reconciles
from repro.sched.fcfs import FCFSScheduler
from repro.server.constant_rate import constant_rate_server
from repro.server.driver import DeviceDriver
from repro.sim.engine import Simulator


class TestSampler:
    def test_interval_validated(self):
        with pytest.raises(ConfigurationError, match="positive"):
            Sampler(Simulator(), 0.0)

    def test_reserved_and_duplicate_names(self):
        sampler = Sampler(Simulator(), 1.0)
        with pytest.raises(ConfigurationError, match="reserved"):
            sampler.probe("t", lambda: 0)
        sampler.probe("depth", lambda: 0)
        with pytest.raises(ConfigurationError, match="already registered"):
            sampler.probe("depth", lambda: 1)

    def test_sample_now_records_time_and_probes(self):
        sim = Simulator()
        sampler = Sampler(sim, 1.0)
        sampler.probe("x", lambda: 42)
        record = sampler.sample_now()
        assert record == {"t": 0.0, "x": 42}
        assert sampler.records == [record]

    def test_periodic_ticks(self):
        sim = Simulator()
        sampler = Sampler(sim, 1.0)
        ticks = []
        sampler.probe("n", lambda: len(ticks))
        sampler.install(until=3.5)
        # Keep the sim alive past the last tick.
        sim.schedule(3.5, lambda: None)
        sim.run()
        assert [r["t"] for r in sampler.records] == [1.0, 2.0, 3.0]

    def test_series_maps_none_to_nan(self):
        sim = Simulator()
        sampler = Sampler(sim, 1.0)
        values = iter([1.0, None, 3.0])
        sampler.probe("v", lambda: next(values))
        for _ in range(3):
            sampler.sample_now()
        times, series = sampler.series("v")
        assert times.tolist() == [0.0, 0.0, 0.0]
        assert series[0] == 1.0
        assert math.isnan(series[1])
        assert series[2] == 3.0

    def test_series_unknown_probe(self):
        with pytest.raises(ConfigurationError, match="unknown probe"):
            Sampler(Simulator(), 1.0).series("nope")


class TestStandardProbes:
    def make_driver(self, metrics=None):
        sim = Simulator()
        driver = DeviceDriver(
            sim,
            constant_rate_server(sim, 100.0, "s"),
            FCFSScheduler(),
            metrics=metrics,
        )
        return sim, driver

    def test_driver_probe_names(self):
        sim, driver = self.make_driver(metrics=MetricsRegistry())
        sampler = attach_standard_probes(Sampler(sim, 1.0), driver)
        names = set(sampler.probe_names)
        assert {"queue_depth", "server_busy", "server_busy_fraction"} <= names
        assert {"arrivals", "dispatches", "completions", "deadline_misses"} <= names

    def test_counter_columns_absent_without_registry(self):
        sim, driver = self.make_driver(metrics=None)
        sampler = attach_standard_probes(Sampler(sim, 1.0), driver)
        assert "arrivals" not in sampler.probe_names
        assert "queue_depth" in sampler.probe_names

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError, match="probe"):
            attach_standard_probes(Sampler(Simulator(), 1.0), object())


class TestDepthReconciles:
    def test_holds(self):
        records = [{"t": 0, "queue_depth": 2, "arrivals": 5, "dispatches": 3}]
        assert depth_reconciles(records)

    def test_violation_detected(self):
        records = [{"t": 0, "queue_depth": 1, "arrivals": 5, "dispatches": 3}]
        assert not depth_reconciles(records)

    def test_missing_columns_skipped(self):
        assert depth_reconciles([{"t": 0, "queue_depth": 7}])

    def test_prefix(self):
        records = [
            {"t": 0, "q1_queue_depth": 0, "q1_arrivals": 2, "q1_dispatches": 2}
        ]
        assert depth_reconciles(records, prefix="q1_")
