"""Cross-layer consistency: the analytic, offline and simulated paths
must tell the same story.

These are the strongest integration tests in the suite: they pin the
live simulated system to independently computed ground truth.
"""

import numpy as np
import pytest

from repro.core.request import QoSClass
from repro.core.rtt import decompose
from repro.core.workload import Workload
from repro.sched.registry import SINGLE_SERVER_POLICIES, make_scheduler
from repro.server.cluster import SplitSystem
from repro.server.constant_rate import constant_rate_server
from repro.server.driver import DeviceDriver
from repro.sim.engine import Simulator
from repro.sim.source import WorkloadSource


@pytest.fixture(scope="module")
def workload():
    gen = np.random.default_rng(21)
    floor = gen.uniform(0.0, 25.0, 600)
    bursts = np.concatenate(
        [t0 + gen.uniform(0.0, 0.3, 120) for t0 in (6.0, 14.0, 21.0)]
    )
    return Workload(np.sort(np.concatenate([floor, bursts])), name="stack")


class TestLiveClassifierMatchesOfflineDecomposition:
    @pytest.mark.parametrize("cmin,delta", [(50.0, 0.1), (40.0, 0.2), (120.0, 0.05)])
    def test_split_q1_equals_offline_rtt(self, workload, cmin, delta):
        """On the Split topology the primary server runs at exactly the
        decomposition capacity, so the *live* classifier (integer queue
        occupancy against the real server) must admit exactly the set the
        *offline* profiler admits — for integral C*delta the two admission
        rules coincide request for request."""
        assert (cmin * delta) == int(cmin * delta)  # test precondition
        offline = decompose(workload, cmin, delta)

        sim = Simulator()
        system = SplitSystem(sim, cmin, 10.0, delta)
        WorkloadSource(sim, workload, system).start()
        sim.run()

        live_primary = sorted(
            r.index for r in system.completed if r.qos_class is QoSClass.PRIMARY
        )
        offline_primary = list(np.flatnonzero(offline.admitted))
        assert live_primary == offline_primary

    def test_live_primary_never_misses_on_split(self, workload):
        sim = Simulator()
        system = SplitSystem(sim, 50.0, 10.0, 0.1)
        WorkloadSource(sim, workload, system).start()
        sim.run()
        assert system.primary_deadline_misses() == 0


class TestWorkConservation:
    def test_all_single_server_policies_share_makespan(self, workload):
        """Every single-server policy is work-conserving, so the last
        completion instant is identical across all of them."""
        makespans = {}
        for policy in SINGLE_SERVER_POLICIES:
            sim = Simulator()
            driver = DeviceDriver(
                sim,
                constant_rate_server(sim, 70.0),
                make_scheduler(policy, 55.0, 15.0, 0.1),
            )
            WorkloadSource(sim, workload, driver).start()
            sim.run()
            makespans[policy] = max(r.completion for r in driver.completed)
        values = list(makespans.values())
        assert all(v == pytest.approx(values[0]) for v in values), makespans

    def test_total_service_time_is_invariant(self, workload):
        """N requests at 1/C each: total busy time is N/C regardless of
        the policy (checked via server utilization)."""
        for policy in ("fcfs", "miser"):
            sim = Simulator()
            server = constant_rate_server(sim, 70.0)
            driver = DeviceDriver(
                sim, server, make_scheduler(policy, 55.0, 15.0, 0.1)
            )
            WorkloadSource(sim, workload, driver).start()
            sim.run()
            expected_busy = len(workload) / 70.0
            assert server.utilization(horizon=sim.now) * sim.now == pytest.approx(
                expected_busy
            )


class TestConservationAcrossPolicies:
    def test_every_policy_serves_every_request_exactly_once(self, workload):
        from repro.shaping import run_policy

        for policy in SINGLE_SERVER_POLICIES + ("split",):
            result = run_policy(workload, policy, 55.0, 15.0, 0.1)
            assert len(result.overall) == len(workload), policy

    def test_response_time_mean_ordering(self, workload):
        """Shaped policies trade a longer overflow tail for a better
        deadline profile, but never change the total work — their mean
        response can exceed FCFS's (which is mean-optimal for identical
        service times on one queue)."""
        from repro.shaping import run_policy

        fcfs = run_policy(workload, "fcfs", 55.0, 15.0, 0.1)
        for policy in ("fairqueue", "miser"):
            shaped = run_policy(workload, policy, 55.0, 15.0, 0.1)
            assert shaped.overall.stats.mean >= fcfs.overall.stats.mean - 1e-9
            assert shaped.fraction_within() >= fcfs.fraction_within()
