"""``repro-check`` CLI: pass/fail wiring and injected-bug detection."""

from pathlib import Path

from repro.check import cli
from repro.sched.classifier import OnlineRTTClassifier

CORPUS = Path(__file__).resolve().parents[1] / "corpus"


class TestCleanRuns:
    def test_corpus_pass(self, capsys):
        assert cli.main(["--corpus", str(CORPUS)]) == 0
        out = capsys.readouterr().out
        assert "corpus OK" in out
        assert "repro-check: PASS" in out

    def test_fuzz_and_differential_pass(self, capsys):
        assert cli.main(["--fuzz", "4", "--differential", "1"]) == 0
        out = capsys.readouterr().out
        assert "fuzz OK" in out
        assert "differential OK" in out

    def test_budget_truncates_without_failing(self, capsys):
        assert cli.main(["--fuzz", "64", "--budget", "0.0"]) == 0
        out = capsys.readouterr().out
        assert "budget" in out
        assert "truncated, not failed" in out

    def test_budget_message_absent_when_work_finishes(self, capsys):
        assert cli.main(["--fuzz", "4", "--budget", "600"]) == 0
        assert "truncated" not in capsys.readouterr().out


class TestInjectedBugDetection:
    """Acceptance: a seeded off-by-one in maxQ1 must fail the corpus."""

    def test_off_by_one_limit_fails_corpus(self, capsys, monkeypatch):
        original = OnlineRTTClassifier.__init__

        def off_by_one(self, capacity, delta):
            original(self, capacity, delta)
            self.limit += 1  # admit one request beyond C*delta
            self.planned_limit += 1

        monkeypatch.setattr(OnlineRTTClassifier, "__init__", off_by_one)
        status = cli.main(["--corpus", str(CORPUS)])
        out = capsys.readouterr().out
        assert status != 0
        assert "corpus FAILED" in out
        assert "repro-check: FAIL" in out
        # The live invariant audit names the broken guarantee too: the
        # extra admission overloads Split's dedicated Cmin server.
        assert "split-q1-guarantee" in out

    def test_clean_after_monkeypatch_removed(self):
        assert cli.main(["--corpus", str(CORPUS)]) == 0


class TestParser:
    def test_defaults(self):
        args = cli.build_parser().parse_args([])
        assert args.corpus is None
        assert args.fuzz is None
        assert args.differential is None
        assert args.seed == 0

    def test_policy_override(self):
        args = cli.build_parser().parse_args(["--policies", "fcfs", "miser"])
        assert args.policies == ["fcfs", "miser"]
