"""Oracle pillar: the exact DP against brute force, fuzz, and knife edges."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.fuzz import GENERATORS, fuzz_oracle
from repro.check.oracle import (
    MODELS,
    certify_optimality,
    oracle_max_admitted,
    oracle_max_admitted_discrete,
    oracle_max_admitted_fluid,
)
from repro.core.bounds import max_admissible_bruteforce
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError

CAPACITIES = [1.0, 2.0, 3.0, 4.0, 5.0, 8.0]
DELTAS = [0.125, 0.25, 0.5, 1.0, 2.0]

# Millisecond grid over a few seconds, small enough for the O(2^n)
# brute force to stay instant.
arrivals_ms = st.lists(
    st.integers(min_value=0, max_value=3000), min_size=1, max_size=10
).map(lambda ms: [t / 1000.0 for t in sorted(ms)])


class TestAgainstBruteForce:
    """The polynomial DP must agree with the exponential ground truth."""

    @given(
        arrivals=arrivals_ms,
        capacity=st.sampled_from(CAPACITIES),
        delta=st.sampled_from(DELTAS),
    )
    @settings(max_examples=80, deadline=None)
    def test_discrete(self, arrivals, capacity, delta):
        workload = Workload(np.asarray(arrivals))
        assert oracle_max_admitted_discrete(
            arrivals, capacity, delta
        ) == max_admissible_bruteforce(workload, capacity, delta, discrete=True)

    @given(
        arrivals=arrivals_ms,
        capacity=st.sampled_from(CAPACITIES),
        delta=st.sampled_from(DELTAS),
    )
    @settings(max_examples=80, deadline=None)
    def test_fluid(self, arrivals, capacity, delta):
        workload = Workload(np.asarray(arrivals))
        assert oracle_max_admitted_fluid(
            arrivals, capacity, delta
        ) == max_admissible_bruteforce(workload, capacity, delta, discrete=False)


class TestFuzzedCertification:
    """Acceptance: the online rule is optimal on 500+ fuzzed traces."""

    def test_500_traces_across_all_generators(self):
        # Round-robins the poisson / onoff / bmodel / adversarial
        # generators, certifying both server models per trace.
        disagreements = fuzz_oracle(500, seed=2026, shrink=False)
        assert disagreements == [], [
            p for d in disagreements for p in d.problems
        ]

    def test_every_generator_participates(self):
        assert len(GENERATORS) == 4
        assert set(GENERATORS) == {"poisson", "onoff", "bmodel", "adversarial"}


class TestHandCases:
    def test_empty_trace(self):
        assert oracle_max_admitted_discrete([], 2.0, 0.5) == 0
        assert oracle_max_admitted_fluid([], 2.0, 0.5) == 0

    def test_simultaneous_burst_caps_at_c_delta(self):
        # Five arrivals at t=0, C=1, delta=2: exactly C*delta = 2 fit.
        arrivals = [0.0] * 5
        assert oracle_max_admitted_discrete(arrivals, 1.0, 2.0) == 2
        assert oracle_max_admitted_fluid(arrivals, 1.0, 2.0) == 2

    def test_sparse_trace_fully_admitted(self):
        arrivals = [0.0, 10.0, 20.0]
        assert oracle_max_admitted_discrete(arrivals, 1.0, 2.0) == 3

    def test_fractional_c_delta_deadline_form_is_more_permissive(self):
        # C=1.5, delta=1: queue bound floor(C*delta)=1 but the deadline
        # form can sustain more over a busy period.
        arrivals = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0]
        discrete = oracle_max_admitted_discrete(arrivals, 1.5, 1.0)
        assert discrete >= 3

    @given(arrivals=arrivals_ms, capacity=st.sampled_from(CAPACITIES))
    @settings(max_examples=40, deadline=None)
    def test_removing_a_request_never_raises_the_optimum(
        self, arrivals, capacity
    ):
        full = oracle_max_admitted_discrete(arrivals, capacity, 0.5)
        reduced = oracle_max_admitted_discrete(arrivals[:-1], capacity, 0.5)
        assert reduced <= full <= reduced + 1


class TestTieSemantics:
    """The oracle certifies under the kernels' documented EPS ties."""

    # Shrunk by the fuzzer: the last admitted request finishes at
    # exactly t + delta on the decimal grid, which is one ulp past the
    # deadline in strict rationals over the binary floats.
    KNIFE = [0.07, 0.077, 0.153, 0.209, 0.215, 0.217, 0.394, 0.399, 0.47]

    def test_strict_and_tolerant_optima_differ_by_the_knife_edge(self):
        tolerant = oracle_max_admitted_discrete(self.KNIFE, 10.0, 0.5)
        strict = oracle_max_admitted_discrete(
            self.KNIFE, 10.0, 0.5, tie_tolerance=0
        )
        assert tolerant == 9
        assert strict == 8

    def test_online_matches_the_tolerant_oracle(self):
        workload = Workload(np.asarray(self.KNIFE))
        for model in MODELS:
            report = certify_optimality(workload, 10.0, 0.5, model)
            assert report.ok, report.summary()


class TestValidation:
    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown server model"):
            oracle_max_admitted([0.0], 1.0, 1.0, model="quantum")
        with pytest.raises(ConfigurationError, match="unknown server model"):
            certify_optimality(Workload([0.0]), 1.0, 1.0, model="quantum")

    def test_unsorted_arrivals_rejected(self):
        with pytest.raises(ConfigurationError, match="sorted"):
            oracle_max_admitted_discrete([2.0, 1.0], 1.0, 1.0)

    def test_nonpositive_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            oracle_max_admitted_discrete([0.0], 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            oracle_max_admitted_fluid([0.0], 1.0, -1.0)

    def test_report_summary_mentions_verdict(self):
        report = certify_optimality(Workload([0.0, 5.0]), 2.0, 0.5)
        assert report.ok
        assert "OK" in report.summary()
