"""Corpus pillar: golden recording, replay, and drift detection."""

import json
from pathlib import Path

import pytest

from repro.check.corpus import (
    GOLDEN_POLICIES,
    load_golden,
    record_golden,
    replay_corpus,
    replay_golden,
)
from repro.exceptions import ConfigurationError

CORPUS = Path(__file__).resolve().parents[1] / "corpus"


class TestCommittedCorpus:
    def test_every_generator_has_a_boundary_trace(self):
        names = {p.stem for p in CORPUS.glob("*.json")}
        for generator in ("poisson", "onoff", "bmodel", "adversarial"):
            assert f"{generator}-boundary" in names

    def test_knife_edge_reproducers_present(self):
        names = {p.stem for p in CORPUS.glob("*.json")}
        assert "knife-edge-mask-tie" in names
        assert "knife-edge-oracle-tolerance" in names

    def test_corpus_replays_clean(self):
        report = replay_corpus(CORPUS)
        assert report.ok, report.summary()
        assert report.n_failed == 0
        assert "OK" in report.summary()


class TestRecordAndLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "tiny.json"
        recorded = record_golden(
            path,
            "tiny",
            [0.0, 0.25, 0.3, 1.5],
            capacity=4.0,
            delta=0.5,
            source={"origin": "unit-test"},
        )
        loaded = load_golden(path)
        assert loaded.name == "tiny"
        assert loaded.capacity == 4.0
        assert loaded.delta == 0.5
        assert loaded.arrivals == recorded.arrivals
        assert loaded.expect == recorded.expect
        assert loaded.source == {"origin": "unit-test"}
        assert loaded.policies == GOLDEN_POLICIES
        assert replay_golden(loaded).ok

    def test_default_delta_c_is_one_over_delta(self, tmp_path):
        golden = record_golden(
            tmp_path / "g.json", "g", [0.0], capacity=2.0, delta=0.5
        )
        assert golden.delta_c == 2.0

    def test_missing_key_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        payload = json.loads((CORPUS / "poisson-boundary.json").read_text())
        del payload["capacity"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="missing required key"):
            load_golden(path)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            replay_corpus(tmp_path / "nowhere")


class TestDriftDetection:
    @pytest.fixture
    def tampered(self, tmp_path):
        def _tamper(mutate):
            payload = json.loads(
                (CORPUS / "poisson-boundary.json").read_text()
            )
            mutate(payload)
            path = tmp_path / "tampered.json"
            path.write_text(json.dumps(payload))
            return replay_golden(load_golden(path))

        return _tamper

    def test_integer_drift_is_exact(self, tampered):
        result = tampered(
            lambda p: p["expect"].update(admitted=p["expect"]["admitted"] + 1)
        )
        assert not result.ok
        assert any("admitted" in m for m in result.mismatches)

    def test_policy_integer_drift_detected(self, tampered):
        def mutate(payload):
            stats = payload["expect"]["policies"]["fcfs"]
            stats["completed"] += 1

        result = tampered(mutate)
        assert any("fcfs.completed" in m for m in result.mismatches)

    def test_float_drift_beyond_tolerance_detected(self, tampered):
        def mutate(payload):
            stats = payload["expect"]["policies"]["fcfs"]
            stats["mean_response"] += 1e-3

        result = tampered(mutate)
        assert any("fcfs.mean_response" in m for m in result.mismatches)

    def test_float_noise_within_tolerance_tolerated(self, tampered):
        def mutate(payload):
            stats = payload["expect"]["policies"]["fcfs"]
            stats["mean_response"] += 1e-13

        assert tampered(mutate).ok

    def test_loosened_tolerance_is_honoured(self, tampered):
        def mutate(payload):
            payload["float_tolerance"] = 0.5
            stats = payload["expect"]["policies"]["fcfs"]
            stats["mean_response"] += 1e-3

        assert tampered(mutate).ok
