"""serve_parity: certify serve == simulate on goldens and fuzzed traces.

This is the differential-replay half of the serving plane's test
contract: every golden trace in the corpus and a 240-case fuzz sweep
(all four generators x all ten policies) must replay through the online
:class:`~repro.serve.harness.ServiceHarness` bit-identically to the
offline event engine.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.check.cli import _run_serve_parity
from repro.check.cli import main as check_main
from repro.check.corpus import load_golden
from repro.check.differential import DEFAULT_POLICIES, serve_parity
from repro.check.fuzz import GENERATORS, make_case
from repro.core.workload import Workload

CORPUS = Path(__file__).resolve().parents[1] / "corpus"

#: Deterministic fuzz campaign: lcm(4 generators, 10 policies) = 20, so
#: 240 cases rotate every (generator, policy) pairing twelve times.
FUZZ_SEED = 424242
FUZZ_CASES = 240


def _goldens() -> list[Path]:
    return sorted(CORPUS.glob("*.json"))


class TestGoldenCorpus:
    @pytest.mark.parametrize(
        "path", _goldens(), ids=lambda p: p.stem
    )
    def test_each_golden_replays_bit_identically(self, path):
        golden = load_golden(path)
        report = serve_parity(
            golden.workload(),
            golden.capacity,
            golden.delta_c,
            golden.delta,
            chunks=4,
        )
        assert report.ok, report.summary()
        assert report.bit_identical
        assert report.max_drift == 0.0

    def test_cli_sweep_covers_every_golden_and_policy(self):
        status, lines = _run_serve_parity(CORPUS)
        assert status == 0
        assert len(_goldens()) == 10
        assert lines == [
            "serve parity OK: 10 golden traces x 10 policies, "
            "serve == simulate bit-for-bit"
        ]

    def test_cli_flag_is_wired(self, capsys):
        assert check_main(["--serve-parity", str(CORPUS)]) == 0
        assert "serve parity OK" in capsys.readouterr().out

    def test_missing_directory_fails(self, tmp_path):
        status, lines = _run_serve_parity(tmp_path)
        assert status == 1
        assert "no golden traces" in lines[0]


class TestFuzzedTraces:
    def test_240_fuzzed_traces_replay_bit_identically(self):
        failures = []
        for index in range(FUZZ_CASES):
            case = make_case(
                GENERATORS[index % len(GENERATORS)],
                FUZZ_SEED,
                index,
                max_requests=80,
            )
            policy = DEFAULT_POLICIES[index % len(DEFAULT_POLICIES)]
            report = serve_parity(
                case.workload(),
                case.capacity,
                max(1.0, case.capacity / 2.0),
                case.delta,
                policies=(policy,),
                chunks=3,
            )
            if not (report.ok and report.bit_identical):
                failures.append(f"case {index} ({policy}): {report.summary()}")
        assert not failures, "\n".join(failures)


class TestReportSemantics:
    def test_topologies_skipped_without_overflow_capacity(self):
        workload = Workload(np.array([0.0, 0.1, 0.2]), name="tiny")
        report = serve_parity(
            workload,
            4.0,
            0.0,
            0.5,
            policies=("fcfs", "split", "splitfarm"),
        )
        assert report.ok
        # The skip is recorded, not silently dropped.
        assert report.policies == ("fcfs",)

    def test_summary_reads_both_ways(self):
        workload = Workload(np.array([0.0, 0.5]), name="two")
        report = serve_parity(workload, 4.0, 2.0, 0.5, policies=("split",))
        assert "serve parity OK" in report.summary()
        assert "bit-identical" in report.summary()
