"""Engine-parity differential: scalar event loop vs columnar batch.

Mirrors the kernel-parity suite one layer up: the differential harness
must certify bit-identical behavior on the golden corpus and fuzzed
traces, and — crucially — must *detect* an engine that drifts (checked
by injecting bugs into the batch engine's admission bound).
"""

from pathlib import Path

import numpy as np
import pytest

from repro.check.corpus import load_golden
from repro.check.differential import (
    ENGINE_PARITY_POLICIES,
    EngineParityReport,
    engine_parity,
)
from repro.check.fuzz import make_case
from repro.core.workload import Workload
from repro.sim import batch

CORPUS = Path(__file__).resolve().parents[1] / "corpus"


def parity_for(workload, capacity, delta):
    """The CLI's parameterization: Q1 at capacity, overflow at half."""
    return engine_parity(workload, capacity, max(1.0, capacity / 2), delta)


class TestGoldenCorpus:
    @pytest.mark.parametrize("path", sorted(CORPUS.glob("*.json")), ids=lambda p: p.stem)
    def test_corpus_traces_bit_identical(self, path):
        golden = load_golden(path)
        report = parity_for(golden.workload(), golden.capacity, golden.delta)
        assert report.ok, report.summary()
        assert report.bit_identical, report.summary()
        assert report.max_drift == 0.0


class TestFuzzedTraces:
    @pytest.mark.parametrize(
        "generator,index",
        [("poisson", 0), ("onoff", 1), ("bmodel", 2), ("adversarial", 3)],
    )
    def test_fuzzed_traces_bit_identical(self, generator, index):
        case = make_case(generator, 29, index, max_requests=150)
        report = parity_for(case.workload(), case.capacity, case.delta)
        assert report.ok, report.summary()
        assert report.bit_identical, report.summary()

    def test_empty_trace(self):
        report = parity_for(Workload([], name="empty"), 10.0, 1.0)
        assert report.ok and report.bit_identical


class TestReportShape:
    def test_summary_strings(self):
        report = parity_for(Workload([0.0, 0.1]), 10.0, 1.0)
        assert "engine parity OK" in report.summary()
        assert "bit-identical" in report.summary()
        assert report.policies == ENGINE_PARITY_POLICIES

    def test_ineligible_policy_is_a_divergence(self):
        report = engine_parity(
            Workload([0.0]), 10.0, 5.0, 1.0, policies=("edf",)
        )
        assert not report.ok
        assert "not batch-eligible" in report.summary()

    def test_drift_formats_in_summary(self):
        report = EngineParityReport(
            workload_name="w", cmin=1.0, delta_c=1.0, delta=1.0,
            policies=("fcfs",), max_drift=2.5e-13, bit_identical=False,
        )
        assert report.ok
        assert "max drift" in report.summary()


class TestInjectedBugDetection:
    """The harness must *fail* when the batch engine is wrong."""

    @pytest.fixture
    def bursty(self):
        rng = np.random.default_rng(41)
        arrivals = np.sort(rng.uniform(0.0, 2.0, 400))
        return Workload(arrivals, name="bursty")

    def test_off_by_one_limit_detected(self, bursty, monkeypatch):
        """An admission bound off by one shows up as an admitted-set
        divergence, not a silent near-miss."""
        true_limit = batch._admission_limit
        monkeypatch.setattr(
            batch, "_admission_limit", lambda c, d: true_limit(c, d) + 1
        )
        report = parity_for(bursty, 50.0, 0.1)
        assert not report.ok
        assert any("admitted sets differ" in d for d in report.divergences)

    def test_service_time_drift_detected(self, bursty, monkeypatch):
        """A batch server running a hair fast trips the drift check."""
        true_fcfs = batch.fcfs_completions

        def fast_fcfs(arrivals, capacity):
            return true_fcfs(arrivals, capacity * (1.0 + 1e-6))

        monkeypatch.setattr(batch, "fcfs_completions", fast_fcfs)
        report = engine_parity(bursty, 50.0, 25.0, 0.1, policies=("fcfs",))
        assert not report.ok
        assert any("drift" in d for d in report.divergences)
        assert not report.bit_identical

    def test_dropped_request_detected(self, bursty, monkeypatch):
        """A batch run that loses a request fails the completion count."""
        true_run = batch.run_batch

        def lossy_run(arrivals, policy, cmin, delta_c, delta):
            return true_run(arrivals[:-1], policy, cmin, delta_c, delta)

        monkeypatch.setattr(batch, "run_batch", lossy_run)
        report = engine_parity(bursty, 50.0, 25.0, 0.1, policies=("fcfs",))
        assert not report.ok
        assert any("completed" in d for d in report.divergences)
