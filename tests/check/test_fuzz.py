"""Fuzz pillar: generators, case derivation, and the ddmin shrinker."""

import numpy as np
import pytest

from repro.check.fuzz import (
    CAPACITIES,
    DELTAS,
    GENERATORS,
    FuzzCase,
    check_case,
    fuzz_oracle,
    make_case,
    shrink_arrivals,
    shrink_case,
)
from repro.exceptions import ConfigurationError


class TestGenerators:
    @pytest.mark.parametrize("generator", GENERATORS)
    def test_cases_are_sorted_and_nonnegative(self, generator):
        case = make_case(generator, 7, 0)
        arrivals = np.asarray(case.arrivals)
        assert arrivals.size > 0
        assert np.all(arrivals >= 0)
        assert np.all(np.diff(arrivals) >= 0)
        assert case.capacity in CAPACITIES
        assert case.delta in DELTAS

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_derivation_is_deterministic(self, generator):
        first = make_case(generator, 7, 3)
        second = make_case(generator, 7, 3)
        assert first == second
        other_index = make_case(generator, 7, 4)
        other_seed = make_case(generator, 8, 3)
        assert first != other_index
        assert first != other_seed

    def test_unknown_generator_rejected(self):
        with pytest.raises(ConfigurationError):
            make_case("markov", 7, 0)

    def test_workload_roundtrip(self):
        case = make_case("poisson", 7, 0)
        workload = case.workload()
        assert len(workload) == len(case.arrivals)
        np.testing.assert_array_equal(
            workload.arrivals, np.asarray(case.arrivals)
        )


class TestCheckCase:
    def test_clean_case_has_no_problems(self):
        assert check_case(make_case("poisson", 7, 0)) == []

    def test_fuzz_oracle_smoke(self):
        assert fuzz_oracle(8, seed=7, shrink=False) == []


class TestShrinker:
    def test_requires_initially_failing_trace(self):
        with pytest.raises(ConfigurationError, match="initially-failing"):
            shrink_arrivals((1.0, 2.0), lambda arr: False)

    def test_result_still_fails_and_is_one_minimal(self):
        # Failure: at least three arrivals >= 5 s.
        def fails(arrivals):
            return sum(1 for t in arrivals if t >= 5.0) >= 3

        original = tuple(float(t) for t in range(10))
        shrunk = shrink_arrivals(original, fails)
        assert fails(shrunk)
        assert len(shrunk) <= 3
        # 1-minimality: dropping any single survivor clears the failure.
        for skip in range(len(shrunk)):
            candidate = shrunk[:skip] + shrunk[skip + 1:]
            assert not fails(candidate)

    def test_rebase_pass_moves_trace_to_zero(self):
        # Shift-invariant failure: two arrivals closer than 1 ms.
        def fails(arrivals):
            return any(
                b - a < 1e-3 for a, b in zip(arrivals, arrivals[1:])
            )

        shrunk = shrink_arrivals((40.0, 41.0, 41.0004, 45.0), fails)
        assert fails(shrunk)
        assert shrunk[0] == 0.0
        assert len(shrunk) == 2

    def test_shrink_is_deterministic(self):
        def fails(arrivals):
            return len(arrivals) >= 4

        original = tuple(float(t) / 10 for t in range(20))
        assert shrink_arrivals(original, fails) == shrink_arrivals(
            original, fails
        )

    def test_shrink_case_preserves_parameters(self):
        case = make_case("bmodel", 9, 1)

        def fails(candidate: FuzzCase) -> bool:
            return len(candidate.arrivals) >= 2

        small = shrink_case(case, fails)
        assert small.capacity == case.capacity
        assert small.delta == case.delta
        assert small.generator == case.generator
        assert len(small.arrivals) == 2
