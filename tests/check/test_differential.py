"""Differential pillar: kernels, server models, and audited policies."""

from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.check import differential as differential_mod
from repro.check.corpus import load_golden
from repro.check.differential import (
    DEFAULT_POLICIES,
    decomposition_cross_check,
    differential_policies,
    disk_comparability_check,
    exact_mask_audit,
    fcfs_lindley_check,
    kernel_parity,
    run_checked,
)
from repro.check.fuzz import make_case
from repro.check.invariants import CheckingScheduler
from repro.core.request import Request
from repro.core.rtt import decompose, decompose_exact
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.sched.fcfs import FCFSScheduler
from repro.sched.sized import BoostScheduler, NudgeScheduler, SRPTScheduler

CORPUS = Path(__file__).resolve().parents[1] / "corpus"


class TestKernelParity:
    @pytest.mark.parametrize(
        "generator,index",
        [("poisson", 0), ("onoff", 1), ("bmodel", 2), ("adversarial", 3)],
    )
    def test_fuzzed_traces_agree_across_backends(self, generator, index):
        case = make_case(generator, 17, index, max_requests=100)
        report = kernel_parity(case.workload(), case.capacity, case.delta)
        assert report.ok, report.summary()

    def test_delta_tie_regression(self):
        """Satellite: the Fraction/float boundary parity case.

        The committed ``knife-edge-mask-tie`` trace makes the float
        kernel admit a request whose exact margin is -2**-53 s (the
        documented sub-EPS tie tolerance) while ``decompose_exact``
        admits its 1 ms successor instead.  The pinned semantics:

        * every float backend (scalar / numpy / native) produces the
          *identical* mask — they share EPS, so any split here is a
          kernel bug at the Fraction/float boundary;
        * float and exact admitted *counts* agree (both optimal);
        * the mask difference is confined to the knife-edge pair;
        * the tolerance-aware cross-check accepts the divergence.
        """
        golden = load_golden(CORPUS / "knife-edge-mask-tie.json")
        workload = golden.workload()
        parity = kernel_parity(workload, golden.capacity, golden.delta)
        assert parity.ok, parity.summary()

        discrete = decompose(workload, golden.capacity, golden.delta)
        exact = decompose_exact(workload, golden.capacity, golden.delta)
        assert discrete.n_admitted == exact.n_admitted == 21
        differing = np.nonzero(discrete.admitted != exact.admitted)[0]
        assert differing.tolist() == [47, 48]
        # The float kernel takes the earlier arrival of the tied pair.
        assert bool(discrete.admitted[47]) and not bool(discrete.admitted[48])
        assert not bool(exact.admitted[47]) and bool(exact.admitted[48])

        problems = decomposition_cross_check(
            workload, golden.capacity, golden.delta
        )
        assert problems == []


class TestCrossCheck:
    def test_clean_on_fuzzed_traces(self):
        for index in range(4):
            case = make_case("adversarial", 5, index, max_requests=80)
            problems = decomposition_cross_check(
                case.workload(), case.capacity, case.delta
            )
            assert problems == [], (index, problems)

    def test_exact_mask_audit_flags_infeasible_admission(self):
        # Three simultaneous arrivals, C=1, delta=1: only one fits, so
        # admitting all three overshoots the last deadline by 2 - 1/C.
        workload = Workload(np.asarray([0.0, 0.0, 0.0]))
        mask = np.array([True, True, True])
        worst, index = exact_mask_audit(workload, 1.0, 1.0, mask)
        assert float(worst) == pytest.approx(2.0)
        assert index == 2

    def test_exact_mask_audit_empty_mask(self):
        workload = Workload(np.asarray([0.0, 1.0]))
        worst, index = exact_mask_audit(
            workload, 1.0, 1.0, np.array([False, False])
        )
        assert index == -1
        assert worst < 0

    def test_count_drift_detected(self, monkeypatch):
        """A fabricated exact-count mismatch must be reported."""
        case = make_case("poisson", 5, 0, max_requests=40)
        workload = case.workload()
        real = decompose_exact(workload, case.capacity, case.delta)

        def lying_exact(wl, capacity, delta):
            return SimpleNamespace(
                n_admitted=real.n_admitted - 1, admitted=real.admitted
            )

        monkeypatch.setattr(differential_mod, "decompose_exact", lying_exact)
        problems = decomposition_cross_check(
            workload, case.capacity, case.delta
        )
        assert any("exact-Fraction" in p for p in problems)


class TestServerModels:
    def test_fcfs_matches_lindley_closed_form(self):
        for index in range(3):
            case = make_case("poisson", 23, index, max_requests=100)
            problems = fcfs_lindley_check(case.workload(), case.capacity)
            assert problems == [], (index, problems)

    def test_degenerate_disk_matches_constant_rate(self):
        for generator in ("poisson", "bmodel"):
            case = make_case(generator, 23, 1, max_requests=80)
            problems = disk_comparability_check(
                case.workload(), case.capacity, case.delta
            )
            assert problems == [], (generator, problems)

    def test_disk_comparability_detects_non_degenerate_disk(self):
        # A real rotation time is way outside atol: the check must flag
        # the drift rather than silently compare apples to oranges.
        case = make_case("poisson", 23, 0, max_requests=40)
        problems = disk_comparability_check(
            case.workload(), case.capacity, case.delta, atol=1e-15
        )
        assert problems, "sub-ulp atol must expose the rotation jitter"


class TestCheckedPolicies:
    def test_all_policies_clean_on_fuzzed_trace(self):
        case = make_case("onoff", 29, 2, max_requests=80)
        report = differential_policies(
            case.workload(),
            case.capacity,
            max(1.0, case.capacity / 2),
            case.delta,
        )
        assert report.ok, report.summary()
        assert set(report.runs) == set(DEFAULT_POLICIES)
        for run in report.runs.values():
            assert run.completed == run.expected
            assert run.violations == ()

    def test_default_policy_set(self):
        assert set(DEFAULT_POLICIES) == {
            "fcfs", "split", "fairqueue", "wf2q", "miser", "edf",
            "srpt", "nudge", "boost", "splitfarm",
        }

    def test_run_checked_rejects_bad_config(self):
        workload = Workload(np.asarray([0.0, 1.0]))
        with pytest.raises(ConfigurationError):
            run_checked(workload, "fcfs", 0.0, 1.0, 0.5)

    def test_split_guarantee_enforced(self):
        case = make_case("poisson", 31, 0, max_requests=60)
        run = run_checked(
            case.workload(), "split", case.capacity, 1.0, case.delta
        )
        assert run.ok, run.violations
        assert run.primary_misses == 0


class TestCheckingScheduler:
    """The auditor itself must catch deliberately broken schedulers."""

    def test_work_conservation_violation(self):
        class LazyFCFS(FCFSScheduler):
            def select(self, now):
                return None  # refuse to serve despite backlog

        checker = CheckingScheduler(LazyFCFS())
        checker.on_arrival(Request(arrival=0.0))
        assert checker.select(0.0) is None
        assert [v.invariant for v in checker.violations] == [
            "work-conservation"
        ]

    def test_fcfs_order_violation(self):
        class LIFOFCFS(FCFSScheduler):
            def select(self, now):
                if self._queue:
                    return self._queue.pop()  # newest first: wrong
                return None

        checker = CheckingScheduler(LIFOFCFS())
        first, second = Request(arrival=0.0), Request(arrival=1.0)
        checker.on_arrival(first)
        checker.on_arrival(second)
        assert checker.select(1.0) is second
        assert checker.select(1.0) is first
        assert any(
            v.invariant == "fcfs-order" for v in checker.violations
        )

    def test_completion_without_dispatch_flagged(self):
        checker = CheckingScheduler(FCFSScheduler())
        stray = Request(arrival=0.0)
        checker.on_completion(stray)
        assert any(
            v.invariant == "dispatch-before-completion"
            for v in checker.violations
        )

    def test_clean_fcfs_records_nothing(self):
        checker = CheckingScheduler(FCFSScheduler())
        requests = [Request(arrival=float(i)) for i in range(4)]
        for request in requests:
            checker.on_arrival(request)
        for expected in requests:
            got = checker.select(expected.arrival)
            assert got is expected
            checker.on_completion(got)
        assert checker.violations == []
        assert checker.pending() == 0


class TestSizedInvariantDetection:
    """The auditor must catch deliberately broken size-aware schedulers."""

    def test_srpt_order_violation(self):
        import heapq

        class WorstFirstSRPT(SRPTScheduler):
            def select(self, now):
                if not self._heap:
                    return None
                entry = max(self._heap)
                self._heap.remove(entry)
                heapq.heapify(self._heap)
                return entry[2]

        checker = CheckingScheduler(WorstFirstSRPT(service_rate=2.0))
        small = Request(arrival=0.0, index=0, service_demand=1.0)
        large = Request(arrival=0.0, index=1, service_demand=5.0)
        checker.on_arrival(small)
        checker.on_arrival(large)
        assert checker.select(0.0) is large
        assert any(v.invariant == "srpt-order" for v in checker.violations)

    def test_srpt_preempt_violation(self):
        class EagerSRPT(SRPTScheduler):
            def should_preempt(self, current, remaining, now):
                return True  # preempt even when the queue has more work

        checker = CheckingScheduler(EagerSRPT(service_rate=2.0))
        checker.on_arrival(Request(arrival=0.0, index=0, service_demand=4.0))
        current = Request(arrival=0.0, index=1, service_demand=1.0)
        # Queued minimum is 4 work units; in-flight remainder is only 2.
        assert checker.should_preempt(current, remaining=1.0, now=0.5)
        assert any(v.invariant == "srpt-preempt" for v in checker.violations)

    def test_nudge_swap_budget_violation(self):
        class GreedyNudge(NudgeScheduler):
            def on_arrival(self, request):
                if self._queue and self.is_small(request):
                    self._queue.appendleft(request)  # jumps the whole queue
                else:
                    self._queue.append(request)

        checker = CheckingScheduler(GreedyNudge())
        for index, demand in enumerate((8.0, 8.0, 1.0)):
            checker.on_arrival(
                Request(arrival=0.1 * index, index=index, service_demand=demand)
            )
        served = checker.select(0.5)
        assert served.service_demand == 1.0  # overtook both larges
        assert any(
            v.invariant == "nudge-swap-once" for v in checker.violations
        )

    def test_nudge_double_overtake_violation(self):
        class RepeatNudge(NudgeScheduler):
            def on_arrival(self, request):
                # One-position swap, but with the swap-once ledger gone:
                # the same large can be overtaken again and again.
                if len(self._queue) >= 1 and self.is_small(request):
                    self._queue.insert(len(self._queue) - 1, request)
                else:
                    self._queue.append(request)

        checker = CheckingScheduler(RepeatNudge())
        checker.on_arrival(Request(arrival=0.0, index=0, service_demand=8.0))
        checker.on_arrival(Request(arrival=0.1, index=1, service_demand=1.0))
        assert checker.select(0.2).index == 1  # first overtake: within budget
        checker.on_arrival(Request(arrival=0.3, index=2, service_demand=1.0))
        assert checker.select(0.4).index == 2  # same large overtaken twice
        assert any(
            "second time" in v.detail
            for v in checker.violations
            if v.invariant == "nudge-swap-once"
        )

    def test_boost_order_violation(self):
        import heapq

        class FIFOBoost(BoostScheduler):
            def select(self, now):
                if not self._heap:
                    return None
                entry = min(self._heap, key=lambda e: e[1])  # arrival order
                self._heap.remove(entry)
                heapq.heapify(self._heap)
                return entry[2]

        checker = CheckingScheduler(FIFOBoost(scale=1.0))
        large = Request(arrival=0.0, index=0, service_demand=8.0)  # key -0.125
        small = Request(arrival=0.5, index=1, service_demand=1.0)  # key -0.5
        checker.on_arrival(large)
        checker.on_arrival(small)
        assert checker.select(0.5) is large
        assert any(v.invariant == "boost-order" for v in checker.violations)

    def test_clean_srpt_records_nothing(self):
        checker = CheckingScheduler(SRPTScheduler(service_rate=2.0))
        small = Request(arrival=0.0, index=0, service_demand=1.0)
        large = Request(arrival=0.0, index=1, service_demand=5.0)
        checker.on_arrival(large)
        checker.on_arrival(small)
        assert checker.select(0.0) is small
        checker.on_completion(small)
        # Preempt path: re-dispatch of the victim is not a double dispatch.
        victim = checker.select(0.0)
        assert victim is large
        assert not checker.should_preempt(victim, remaining=2.5, now=0.5)
        tiny = Request(arrival=0.5, index=2, service_demand=0.5)
        checker.on_arrival(tiny)
        assert checker.should_preempt(victim, remaining=2.0, now=0.5)
        victim.remaining_service = 2.0
        checker.on_preempt(victim)
        assert checker.select(0.5) is tiny
        checker.on_completion(tiny)
        assert checker.select(0.75) is victim
        checker.on_completion(victim)
        assert checker.violations == []
        assert checker.pending() == 0
