"""Tests for the multiplexing analysis module."""

import numpy as np
import pytest

from repro.analysis.multiplexing import packing_count, render, study
from repro.core.capacity import CapacityPlanner
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def clients():
    gen = np.random.default_rng(8)
    out = []
    for i, rate in enumerate((30, 50, 20)):
        arr = np.sort(gen.uniform(0.0, 20.0, rate * 20))
        out.append(Workload(arr, name=f"c{i}"))
    return out


class TestStudy:
    def test_needs_two(self, clients):
        with pytest.raises(ConfigurationError):
            study(clients[:1], 0.05)

    def test_pairwise_complete(self, clients):
        result = study(clients, 0.05, 0.9)
        assert len(result.pairwise) == 3  # C(3, 2)
        assert set(result.individual) == {"c0", "c1", "c2"}

    def test_individuals_match_planner(self, clients):
        result = study(clients, 0.05, 0.9)
        for w in clients:
            assert result.individual[w.name] == CapacityPlanner(
                w, 0.05
            ).min_capacity(0.9)

    def test_whole_mix_uses_all_clients(self, clients):
        result = study(clients, 0.05, 0.9)
        assert result.whole_mix.estimate == pytest.approx(
            sum(result.individual.values())
        )

    def test_multiplexing_gain_in_range(self, clients):
        result = study(clients, 0.05, 0.9)
        assert -0.1 <= result.multiplexing_gain <= 1.0

    def test_worst_pair_error(self, clients):
        result = study(clients, 0.05, 0.9)
        errors = [r.relative_error for r in result.pairwise.values()]
        assert result.worst_pair_error() == max(errors)

    def test_render(self, clients):
        text = render(study(clients, 0.05, 0.9))
        assert "Pairwise consolidation" in text
        assert "multiplexing gain" in text


class TestPackingCount:
    def test_decomposed_packs_at_least_as_many(self, bursty_workload):
        decomposed = packing_count(bursty_workload, 2000.0, 0.05, 0.9)
        worst = packing_count(
            bursty_workload, 2000.0, 0.05, 0.9, worst_case=True
        )
        assert decomposed >= worst
        assert decomposed >= 1

    def test_zero_when_server_too_small(self, bursty_workload):
        assert packing_count(bursty_workload, 1.0, 0.05, 0.9) == 0

    def test_invalid_capacity(self, bursty_workload):
        with pytest.raises(ConfigurationError):
            packing_count(bursty_workload, 0.0, 0.05)
