"""Tests for text rendering of tables and figures."""

import numpy as np

from repro.analysis.reporting import ascii_bars, ascii_cdf, ascii_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["A", "Long"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].strip().startswith("A")
        assert "333" in lines[3]
        # Every row has the same width.
        assert len({len(line) for line in lines[:1] + lines[2:]}) == 1

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["x"], [[1.0], [0.123456]])
        assert "1" in text
        assert "0.123" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestAsciiSeries:
    def test_shape(self):
        text = ascii_series([1, 5, 3, 2], width=10, height=4, label="test")
        lines = text.splitlines()
        assert lines[0].startswith("test")
        assert len(lines) == 1 + 4 + 1  # label + rows + axis

    def test_peak_reported(self):
        text = ascii_series([1, 42, 3], label="x")
        assert "42" in text

    def test_downsampling_keeps_peaks(self):
        data = np.ones(1000)
        data[500] = 100.0
        text = ascii_series(data, width=20, height=5)
        # The single spike must survive max-pooling.
        assert "#" in text.splitlines()[0]

    def test_empty(self):
        assert "empty" in ascii_series([], label="z")


class TestAsciiCdf:
    def test_marks_target(self):
        xs = np.array([0.001, 0.01, 0.1, 1.0])
        ys = np.array([0.25, 0.5, 0.75, 1.0])
        text = ascii_cdf(xs, ys, marks=(0.01,))
        assert "<== target" in text
        assert "%" in text

    def test_empty(self):
        assert "empty" in ascii_cdf([], [])


class TestAsciiBars:
    def test_values_shown(self):
        text = ascii_bars(["fcfs", "miser"], [10.0, 5.0], unit=" ms")
        assert "fcfs" in text and "miser" in text
        assert "10 ms" in text

    def test_longest_bar_is_max(self):
        text = ascii_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_empty(self):
        assert ascii_bars([], []) == "(no bars)"
