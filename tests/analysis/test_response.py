"""Tests for response-time analysis (closed-form FCFS, CDF helpers)."""

import numpy as np
import pytest

from repro.analysis.response import (
    cdf_at,
    cdf_points,
    compliance,
    fcfs_response_times,
    log_grid_ms,
    time_to_compliance,
)
from repro.core.workload import Workload
from repro.exceptions import ConfigurationError
from repro.shaping import run_policy


class TestFcfsClosedForm:
    def test_idle_server_pure_service_time(self):
        w = Workload([0.0, 10.0, 20.0])
        rt = fcfs_response_times(w, 10.0)
        assert np.allclose(rt, 0.1)

    def test_batch_queueing(self):
        w = Workload([0.0, 0.0, 0.0])
        rt = fcfs_response_times(w, 10.0)
        assert np.allclose(rt, [0.1, 0.2, 0.3])

    def test_matches_event_simulation(self, bursty_workload):
        """The vectorized Lindley recursion is bit-compatible with the
        discrete-event simulator — two independent implementations."""
        capacity = 60.0
        analytic = np.sort(fcfs_response_times(bursty_workload, capacity))
        result = run_policy(bursty_workload, "fcfs", capacity, 0.0001, 0.1)
        # run_policy serves at cmin + delta_c; redo analytically at that rate.
        analytic = np.sort(fcfs_response_times(bursty_workload, capacity + 0.0001))
        simulated = np.sort(result.overall.samples)
        assert np.allclose(analytic, simulated, atol=1e-9)

    def test_empty(self, empty_workload):
        assert fcfs_response_times(empty_workload, 10.0).size == 0

    def test_invalid_capacity(self, toy_workload):
        with pytest.raises(ConfigurationError):
            fcfs_response_times(toy_workload, 0.0)


class TestCompliance:
    def test_basic(self):
        assert compliance([0.1, 0.2, 0.3, 0.4], 0.25) == pytest.approx(0.5)

    def test_empty(self):
        assert compliance([], 1.0) == 1.0

    def test_boundary_inclusive(self):
        assert compliance([0.1], 0.1) == 1.0


class TestCdf:
    def test_points(self):
        xs, ys = cdf_points([0.3, 0.1, 0.2])
        assert xs.tolist() == [0.1, 0.2, 0.3]
        assert ys[-1] == 1.0

    def test_points_empty(self):
        xs, ys = cdf_points([])
        assert xs.size == 0

    def test_cdf_at_grid(self):
        values = cdf_at([0.1, 0.2, 0.3, 0.4], [0.0, 0.15, 0.25, 1.0])
        assert values.tolist() == [0.0, 0.25, 0.5, 1.0]

    def test_cdf_at_empty_sample(self):
        assert cdf_at([], [0.5]).tolist() == [1.0]


class TestTimeToCompliance:
    def test_reads_off_quantile(self):
        samples = np.arange(1, 101) / 100.0  # 0.01 .. 1.00
        assert time_to_compliance(samples, 0.9) == pytest.approx(0.90)
        assert time_to_compliance(samples, 1.0) == pytest.approx(1.00)

    def test_consistent_with_compliance(self, rng):
        samples = rng.exponential(0.05, 500)
        bound = time_to_compliance(samples, 0.9)
        assert compliance(samples, bound) >= 0.9

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            time_to_compliance([0.1], 0.0)

    def test_empty(self):
        assert time_to_compliance([], 0.9) == 0.0


class TestLogGrid:
    def test_range_and_units(self):
        grid = log_grid_ms(1.0, 1000.0, 4)
        assert grid[0] == pytest.approx(0.001)
        assert grid[-1] == pytest.approx(1.0)
        assert len(grid) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            log_grid_ms(10.0, 5.0)
