"""Tests for burstiness metrics."""

import pytest

from repro.analysis.burstiness import (
    burstiness_summary,
    hurst_aggregated_variance,
    hurst_rs,
    idc_curve,
    index_of_dispersion,
)
from repro.core.workload import Workload
from repro.exceptions import WorkloadError
from repro.traces.synthetic.bmodel import bmodel_workload
from repro.traces.synthetic.poisson import poisson_workload


@pytest.fixture(scope="module")
def poisson():
    return poisson_workload(200.0, 120.0, seed=0)


@pytest.fixture(scope="module")
def selfsimilar():
    return bmodel_workload(200.0, 120.0, bias=0.8, seed=0)


class TestIDC:
    def test_poisson_near_one(self, poisson):
        assert index_of_dispersion(poisson, 0.1) == pytest.approx(1.0, abs=0.35)

    def test_bursty_much_larger(self, selfsimilar):
        assert index_of_dispersion(selfsimilar, 0.1) > 5.0

    def test_deterministic_near_zero(self):
        w = Workload([i * 0.01 for i in range(5000)])
        assert index_of_dispersion(w, 0.1) < 0.1

    def test_idc_grows_with_scale_for_lrd(self, selfsimilar):
        curve = idc_curve(selfsimilar, [0.05, 0.4, 3.2])
        values = [v for _, v in curve]
        assert values[0] < values[-1]

    def test_idc_flat_for_poisson(self, poisson):
        curve = idc_curve(poisson, [0.05, 0.4, 3.2])
        values = [v for _, v in curve]
        assert max(values) < 3.0

    def test_too_short(self):
        with pytest.raises(WorkloadError):
            index_of_dispersion(Workload([0.01]), 1.0)


class TestHurst:
    def test_poisson_near_half(self, poisson):
        h = hurst_aggregated_variance(poisson)
        assert 0.35 < h < 0.65

    def test_selfsimilar_high(self, selfsimilar):
        h = hurst_aggregated_variance(selfsimilar)
        assert h > 0.68
        assert h > hurst_aggregated_variance(poisson_workload(200.0, 120.0, seed=0)) + 0.1

    def test_rs_orders_processes(self, poisson, selfsimilar):
        assert hurst_rs(selfsimilar) > hurst_rs(poisson)

    def test_rs_too_short(self):
        with pytest.raises(WorkloadError):
            hurst_rs(Workload([0.0, 0.1]))

    def test_estimates_clamped(self, selfsimilar):
        assert 0.0 <= hurst_aggregated_variance(selfsimilar) <= 1.0
        assert 0.0 <= hurst_rs(selfsimilar) <= 1.0


class TestSummary:
    def test_keys(self, poisson):
        s = burstiness_summary(poisson)
        for key in ("mean_rate_iops", "peak_to_mean", "idc_100ms", "hurst_aggvar"):
            assert key in s
