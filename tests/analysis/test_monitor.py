"""Tests for the online compliance monitor."""

import pytest

from repro.analysis.monitor import ComplianceMonitor
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ConfigurationError):
            ComplianceMonitor(delta=0.0, target=0.9)
        with pytest.raises(ConfigurationError):
            ComplianceMonitor(delta=0.1, target=0.0)
        with pytest.raises(ConfigurationError):
            ComplianceMonitor(delta=0.1, target=0.9, window=0.0)


class TestRecording:
    def test_empty(self):
        monitor = ComplianceMonitor(delta=0.1, target=0.9)
        assert monitor.windows() == []
        assert monitor.overall_fraction == 1.0
        assert monitor.availability() == 1.0

    def test_window_bucketing_by_arrival(self):
        monitor = ComplianceMonitor(delta=0.1, target=0.9, window=1.0)
        monitor.record(arrival=0.5, response_time=0.05)  # window 0, within
        monitor.record(arrival=0.9, response_time=0.50)  # window 0, miss
        monitor.record(arrival=2.1, response_time=0.01)  # window 2, within
        windows = monitor.windows()
        assert len(windows) == 3  # dense, including the empty window 1
        assert windows[0].total == 2 and windows[0].within == 1
        assert windows[1].total == 0
        assert windows[2].fraction == 1.0

    def test_boundary_inclusive(self):
        monitor = ComplianceMonitor(delta=0.1, target=0.9)
        monitor.record(0.0, 0.1)
        assert monitor.overall_fraction == 1.0

    def test_violations(self):
        monitor = ComplianceMonitor(delta=0.1, target=0.75, window=1.0)
        for _ in range(3):
            monitor.record(0.5, 0.01)
        monitor.record(0.5, 0.5)  # window 0: 3/4 = 0.75, meets target
        for _ in range(2):
            monitor.record(1.5, 0.5)  # window 1: 0/2
        violations = monitor.violations()
        assert len(violations) == 1
        assert violations[0].start == 1.0

    def test_availability(self):
        monitor = ComplianceMonitor(delta=0.1, target=0.9, window=1.0)
        monitor.record(0.5, 0.01)  # good window
        monitor.record(1.5, 0.99)  # bad window
        assert monitor.availability() == pytest.approx(0.5)

    def test_overall_fraction(self):
        monitor = ComplianceMonitor(delta=0.1, target=0.9)
        monitor.record(0.0, 0.05)
        monitor.record(0.0, 0.50)
        assert monitor.overall_fraction == pytest.approx(0.5)

    def test_record_requests(self):
        from repro.core.request import Request

        monitor = ComplianceMonitor(delta=0.1, target=0.9)
        r = Request(arrival=1.0)
        r.completion = 1.05
        monitor.record_requests([r])
        assert monitor.overall_fraction == 1.0
