"""Tests for gnuplot export."""

import pytest

from repro.analysis.gnuplot import (
    export_figure2,
    export_figure4,
    export_table1,
    write_dat,
)
from repro.exceptions import ConfigurationError
from repro.experiments import figure2, figure4, table1
from repro.experiments.common import ExperimentConfig


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(duration=15.0)


class TestWriteDat:
    def test_columns_and_header(self, tmp_path):
        path = write_dat(
            tmp_path / "x.dat",
            {"t": [0.0, 1.0], "v": [2.5, 3.5]},
            comment="hello",
        )
        lines = path.read_text().splitlines()
        assert lines[0] == "# hello"
        assert lines[1] == "# t v"
        assert lines[2] == "0 2.5"

    def test_length_mismatch(self, tmp_path):
        with pytest.raises(ConfigurationError, match="lengths"):
            write_dat(tmp_path / "x.dat", {"a": [1], "b": [1, 2]})

    def test_empty_columns(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_dat(tmp_path / "x.dat", {})

    def test_creates_parent_dirs(self, tmp_path):
        path = write_dat(tmp_path / "deep/nested/x.dat", {"a": [1]})
        assert path.exists()


class TestFigureExports:
    def test_figure2(self, tmp_path, config):
        result = figure2.run(config)
        paths = export_figure2(result, tmp_path / "fig2")
        names = {p.name for p in paths}
        assert "fig2_original.dat" in names
        assert "fig2_primary.dat" in names
        assert "fig2.gp" in names
        gp = (tmp_path / "fig2.gp").read_text()
        assert "plot" in gp and "IOPS" in gp

    def test_figure4(self, tmp_path, config):
        result = figure4.run(config, deltas=(0.010,))
        paths = export_figure4(result, tmp_path / "fig4")
        dats = [p for p in paths if p.suffix == ".dat"]
        assert len(dats) == 3  # one per workload
        gp = (tmp_path / "fig4.gp").read_text()
        assert "logscale" in gp
        # Data is monotone CDF.
        body = dats[0].read_text().splitlines()[2:]
        fractions = [float(line.split()[1]) for line in body]
        assert fractions == sorted(fractions)

    def test_table1(self, tmp_path, config):
        result = table1.run(config, deltas=(0.010,), fractions=(0.9, 1.0))
        paths = export_table1(result, tmp_path / "t1")
        dats = [p for p in paths if p.suffix == ".dat"]
        assert len(dats) == 3
        first = dats[0].read_text()
        assert "fraction" in first and "cmin_iops" in first


class TestRemainingFigureExports:
    def test_figure6(self, tmp_path, config):
        from repro.analysis.gnuplot import export_figure6
        from repro.experiments import figure6

        result = figure6.run(config, fractions=(0.9,))
        export_figure6(result, tmp_path / "f6")
        assert (tmp_path / "f6_f90.dat").exists()
        assert "histogram" in (tmp_path / "f6.gp").read_text()

    def test_figure7(self, tmp_path, config):
        from repro.analysis.gnuplot import export_figure7
        from repro.experiments import figure7

        result = figure7.run(
            config, workload_names=("fintrans",), fractions=(1.0, 0.9),
            shifts=(1.0,),
        )
        export_figure7(result, tmp_path / "f7")
        body = (tmp_path / "f7_f100.dat").read_text()
        assert "estimate" in body and "shift1s" in body

    def test_figure8(self, tmp_path, config):
        from repro.analysis.gnuplot import export_figure8
        from repro.experiments import figure8

        result = figure8.run(
            config, pairs=(("websearch", "fintrans"),), fractions=(1.0,)
        )
        export_figure8(result, tmp_path / "f8")
        body = (tmp_path / "f8_f100.dat").read_text()
        assert "real" in body
