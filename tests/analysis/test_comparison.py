"""Tests for the policy comparison harness."""

import pytest

from repro.analysis.comparison import compare_policies, render
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def comparison(request):
    import numpy as np

    from repro.core.workload import Workload

    gen = np.random.default_rng(12345)
    floor = gen.uniform(0.0, 20.0, 400)
    burst = 8.0 + gen.uniform(0.0, 0.4, 300)
    w = Workload(np.sort(np.concatenate([floor, burst])), name="cmp")
    return compare_policies(w, delta=0.1, fraction=0.9)


class TestComparePolicies:
    def test_all_policies_run(self, comparison):
        assert set(comparison.runs) == {"fcfs", "split", "fairqueue", "miser"}
        total = {len(r.overall) for r in comparison.runs.values()}
        assert len(total) == 1  # every policy served everything

    def test_same_capacity_everywhere(self, comparison):
        capacities = {r.total_capacity for r in comparison.runs.values()}
        assert len(capacities) == 1

    def test_needs_policies(self, comparison):
        from repro.core.workload import Workload

        with pytest.raises(ConfigurationError):
            compare_policies(Workload([1.0]), 0.1, policies=())

    def test_ranking_and_winner(self, comparison):
        ranking = comparison.ranking()
        assert set(ranking) == set(comparison.runs)
        assert comparison.winner() == ranking[0]
        values = [
            comparison.runs[p].fraction_within() for p in ranking
        ]
        assert values == sorted(values, reverse=True)

    def test_fcfs_never_wins(self, comparison):
        """The paper's point, as an assertion: the unshaped baseline is
        never the best policy at the deadline on a bursty workload."""
        assert comparison.winner() != "fcfs"

    def test_render(self, comparison):
        text = render(comparison)
        assert "miser" in text
        assert "Q1 misses" in text
