"""Extended property-based tests for the scheduler substrates."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.request import Request
from repro.core.sla import GraduatedSLA
from repro.core.streaming import StreamingPlanner
from repro.core.workload import Workload
from repro.core.multiclass import decompose_tiers, plan_and_decompose
from repro.sched.drr import DeficitRoundRobin
from repro.sched.pclock import FlowSLA, PClockScheduler

arrivals = st.lists(
    st.integers(min_value=0, max_value=20000), min_size=1, max_size=100
).map(lambda xs: np.sort(np.asarray(xs, dtype=float)) / 1000.0)


# ---------------------------------------------------------------------------
# pClock properties
# ---------------------------------------------------------------------------


@given(arrivals, st.integers(min_value=1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_pclock_conforming_deadlines_never_exceed_sla(arr, sigma):
    """Within a burst allowance of sigma, any arrival pattern that stays
    inside the token bucket gets exactly arrival + delta as its tag; no
    tag is ever earlier than that."""
    sla = FlowSLA(sigma=float(sigma), rho=100.0, delta=0.05)
    sched = PClockScheduler({1: sla})
    for t in arr:
        r = Request(arrival=float(t), client_id=1)
        sched.on_arrival(r)
        assert r.deadline is not None
        assert r.deadline >= t + sla.delta - 1e-12


@given(arrivals)
@settings(max_examples=50, deadline=None)
def test_pclock_tags_monotone_within_flow(arr):
    """Deadlines of a single flow never decrease: the token bucket only
    pushes tags out, never reorders a flow against itself."""
    sched = PClockScheduler({1: FlowSLA(sigma=2.0, rho=50.0, delta=0.05)})
    tags = []
    for t in arr:
        r = Request(arrival=float(t), client_id=1)
        sched.on_arrival(r)
        tags.append(r.deadline)
    assert tags == sorted(tags)


# ---------------------------------------------------------------------------
# DRR properties
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=4, max_value=50),
)
@settings(max_examples=50, deadline=None)
def test_drr_share_bound_while_backlogged(w1, w2, rounds):
    """While both flows stay backlogged, served counts track weighted
    shares within one quantum's worth of requests."""
    drr = DeficitRoundRobin({1: float(w1), 2: float(w2)})
    for _ in range(rounds):
        drr.add(1, Request(arrival=0.0))
        drr.add(2, Request(arrival=0.0))
    served = {1: 0, 2: 0}
    total_weight = w1 + w2
    quantum_bound = 2.0 * max(w1, w2) / min(w1, w2) + 2.0
    for n in range(1, rounds + 1):
        fid, _ = drr.select()
        served[fid] += 1
        expected = n * w1 / total_weight
        assert abs(served[1] - expected) <= quantum_bound


@given(st.integers(min_value=1, max_value=80))
@settings(max_examples=30, deadline=None)
def test_drr_conserves_and_empties(n):
    drr = DeficitRoundRobin({1: 2.0, 2: 5.0})
    for i in range(n):
        drr.add(1 + i % 2, Request(arrival=float(i)))
    served = 0
    while drr.select() is not None:
        served += 1
    assert served == n
    assert len(drr) == 0


# ---------------------------------------------------------------------------
# Multiclass cascade properties
# ---------------------------------------------------------------------------


@given(arrivals, st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_cascade_labels_partition(arr, capacity):
    w = Workload(arr)
    assignment = decompose_tiers(
        w, [(float(capacity), 0.25), (float(capacity), 1.0)]
    )
    assert sum(assignment.counts()) == len(w)
    assert assignment.labels.min() >= 0
    assert assignment.labels.max() <= 2


@given(arrivals)
@settings(max_examples=30, deadline=None)
def test_cascade_plan_meets_sla(arr):
    w = Workload(arr)
    sla = GraduatedSLA([(0.7, 0.25), (0.95, 1.0)])
    _, assignment = plan_and_decompose(w, sla)
    coverage = assignment.cumulative_fractions()
    assert coverage[0] >= 0.7 - 1e-9
    assert coverage[1] >= 0.95 - 1e-9


# ---------------------------------------------------------------------------
# Streaming planner properties
# ---------------------------------------------------------------------------


@given(arrivals)
@settings(max_examples=30, deadline=None)
def test_streaming_high_water_dominates_estimates(arr):
    planner = StreamingPlanner(delta=0.25, window=5.0, replan_interval=1.0)
    planner.observe_many(arr)
    for snapshot in planner.history:
        assert snapshot.cmin <= planner.high_water_mark


# ---------------------------------------------------------------------------
# Perturbation properties
# ---------------------------------------------------------------------------


@given(arrivals, st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_thin_is_subset_with_expected_size(arr, p):
    from repro.traces.perturb import thin

    w = Workload(arr)
    thinned = thin(w, p, seed=0)
    assert len(thinned) <= len(w)
    original = list(w.arrivals)
    for t in thinned.arrivals:
        assert t in original


@given(arrivals, st.floats(min_value=0.0, max_value=0.5))
@settings(max_examples=40, deadline=None)
def test_jitter_preserves_count_and_order(arr, magnitude):
    from repro.traces.perturb import jitter

    w = Workload(arr)
    noisy = jitter(w, magnitude, seed=0)
    assert len(noisy) == len(w)
    assert list(noisy.arrivals) == sorted(noisy.arrivals)
    assert noisy.arrivals.min() >= 0.0


@given(arrivals, st.sampled_from([0.01, 0.1, 0.5]))
@settings(max_examples=40, deadline=None)
def test_batch_quantizes_without_losing_requests(arr, grid):
    """Batching preserves the request count, quantizes every instant
    down to the grid, and moves no arrival by more than one grid step.

    (It does NOT universally increase Cmin: flooring an arrival earlier
    can relieve its successor's deadline pressure on tiny workloads —
    the burstiness increase is a statistical effect, asserted on
    realistic traces in tests/traces/test_perturb.py.)"""
    from repro.traces.perturb import batch

    w = Workload(arr)
    quantized = batch(w, grid)
    assert len(quantized) == len(w)
    for before_t, after_t in zip(w.arrivals, quantized.arrivals):
        assert after_t <= before_t + 1e-12
        assert before_t - after_t < grid + 1e-12
        assert abs(after_t / grid - round(after_t / grid)) < 1e-6
