"""Tests for the experiment harness (small-scale runs of every figure)."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table1,
)
from repro.experiments import (
    bufferbloat,
    extensions,
    resilience,
    sensitivity,
    workbound,
)
from repro.experiments.runner import ORDER, main

#: Small scale: fast but still structurally meaningful.
CONFIG = ExperimentConfig(duration=20.0)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(duration=20.0)


class TestConfig:
    def test_workload_memoized(self, config):
        assert config.workload("openmail") is config.workload("openmail")

    def test_seed_offset_changes_trace(self):
        a = ExperimentConfig(duration=10.0).workload("websearch")
        b = ExperimentConfig(duration=10.0, seed_offset=5).workload("websearch")
        assert len(a) != len(b) or a.arrivals[0] != b.arrivals[0]

    def test_workloads_list(self, config):
        names = [w.name for w in config.workloads()]
        assert names == ["WebSearch", "FinTrans", "OpenMail"]


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, config):
        return table1.run(config, deltas=(0.010, 0.050), fractions=(0.9, 1.0))

    def test_structure(self, result):
        assert set(result.capacities) == {"websearch", "fintrans", "openmail"}
        for _, _, row in result.rows():
            assert set(row) == {0.9, 1.0}

    def test_capacities_monotone_in_fraction(self, result):
        for _, _, row in result.rows():
            assert row[1.0] >= row[0.9]

    def test_knee_present(self, result):
        assert result.knee("openmail", 0.010) > 2.0

    def test_render(self, result):
        text = table1.render(result)
        assert "Table 1" in text
        assert "websearch" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self, config):
        return figure2.run(config)

    def test_peak_collapse(self, result):
        """Panel (b)'s defining feature: Q1's peak rate collapses toward
        Cmin while the original peak towers above it."""
        assert result.primary_peak < 0.6 * result.original_peak
        assert result.primary_peak < 2.5 * result.cmin

    def test_recombination_serves_everything(self, result):
        starts, rates = result.recombined
        total = rates.sum() * result.bin_width
        assert total == pytest.approx(
            len(CONFIG.workload("openmail")), rel=0.01
        )

    def test_fraction_admitted_near_target(self, result):
        assert result.fraction_admitted >= result.fraction

    def test_render(self, result):
        text = figure2.render(result)
        assert "Figure 2" in text
        assert "(a)" in text and "(b)" in text and "(c)" in text


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3.run()

    def test_matches_paper_narrative(self, result):
        assert result.optimal_drops == 2
        assert result.rtt_drops == 2
        assert result.drop_choice_feasible["(b) one at t=1, one at t=2"]
        assert result.drop_choice_feasible["(c) one at t=2, one at t=3"]
        assert not result.drop_choice_feasible["poor: two at t=1"]

    def test_admitted_meet_deadline(self, result):
        assert result.max_primary_response <= result.delta + 1e-9

    def test_recombination_covers_everything(self, result):
        assert result.recombined_fraction_met == 1.0

    def test_render(self, result):
        text = figure3.render(result)
        assert "Figure 3" in text
        assert "overload" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self, config):
        return figure4.run(config, deltas=(0.010,))

    def test_fcfs_below_decomposed_target(self, result):
        for cell in result.cells:
            assert cell.compliance_at_delta < cell.fraction_target

    def test_cell_lookup(self, result):
        cell = result.cell("WebSearch", 0.010)
        assert cell.capacity > 0
        with pytest.raises(KeyError):
            result.cell("WebSearch", 0.5)

    def test_render(self, result):
        assert "Figure 4" in figure4.render(result)
        assert "ms" in figure4.render(result, with_cdfs=True)


class TestFigure5:
    def test_higher_target_higher_compliance(self, config):
        result = figure5.run(config, fractions=(0.95, 0.99))
        lo = result.panels[0.95].cells
        hi = result.panels[0.99].cells
        for a, b in zip(lo, hi):
            assert b.capacity >= a.capacity
        assert "Figure 5" in figure5.render(result)


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self, config):
        return figure6.run(config, fractions=(0.9,))

    def test_shaped_policies_beat_fcfs(self, result):
        panel = result.panel(0.9)
        fcfs = panel.bins("fcfs")[f"<={0.05:g}"]
        for policy in ("split", "fairqueue", "miser"):
            assert panel.bins(policy)[f"<={0.05:g}"] > fcfs

    def test_split_near_target(self, result):
        panel = result.panel(0.9)
        assert panel.bins("split")[f"<={0.05:g}"] >= 0.85

    def test_overflow_ratio_present(self, result):
        mean_ratio, max_ratio = result.overflow_ratios[0.9]
        assert mean_ratio > 0

    def test_render(self, result):
        assert "Figure 6" in figure6.render(result)


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self, config):
        return figure7.run(
            config, workload_names=("openmail",), fractions=(1.0, 0.9),
            shifts=(1.0,),
        )

    def test_traditional_overprovisions(self, result):
        cell = result.cell("OpenMail", 1.0)
        assert cell.ratio(1.0) < 0.8

    def test_decomposed_estimate_accurate(self, result):
        cell = result.cell("OpenMail", 0.9)
        assert cell.ratio(1.0) > 0.85

    def test_render(self, result):
        assert "Figure 7" in figure7.render(result)


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self, config):
        return figure8.run(
            config, pairs=(("websearch", "fintrans"),), fractions=(1.0, 0.9)
        )

    def test_decomposed_closer_than_traditional(self, result):
        pair = ("websearch", "fintrans")
        traditional = result.result(pair, 1.0)
        decomposed = result.result(pair, 0.9)
        assert decomposed.ratio > traditional.ratio

    def test_render(self, result):
        assert "Figure 8" in figure8.render(result)


class TestRunner:
    def test_registry_covers_order(self):
        # "all" runs the paper's artifacts; extensions are opt-in by name.
        assert set(ORDER) < set(EXPERIMENTS)
        assert "extensions" in EXPERIMENTS

    def test_cli_single_experiment(self, capsys, tmp_path):
        out = tmp_path / "exp.md"
        code = main(
            ["figure4", "--duration", "15", "--output", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "figure4" in captured
        assert "Figure 4" in out.read_text()

    def test_parallel_output_matches_serial(self, capsys):
        """--jobs must not change results or their order."""
        import re

        args = ["figure3", "figure4", "--duration", "10"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        def strip(text):
            return re.sub(r"\(\d+\.\d s\)", "", text)

        assert strip(parallel) == strip(serial)

    def test_jobs_validation(self):
        with pytest.raises(SystemExit):
            main(["figure3", "--jobs", "0"])


class TestExtensions:
    def test_cascade_and_streaming(self, config):
        result = extensions.run(config)
        assert len(result.cascade) == 3
        for cell in result.cascade:
            # The cascade always beats worst-case provisioning.
            assert cell.cascade_total < cell.worst_case
            assert cell.coverage[0] >= 0.90
            assert cell.coverage[1] >= 0.99
        for cell in result.streaming:
            assert cell.replans > 0
            # The live estimate lands in the offline ballpark.
            assert 0.5 <= cell.high_water_mark / cell.offline_cmin <= 2.0
        text = extensions.render(result)
        assert "Cascade" in text and "Online" in text


class TestSensitivity:
    @pytest.fixture(scope="class")
    def result(self, config):
        return sensitivity.run(config)

    def test_all_cells_present(self, result):
        assert len(result.cells) == 9  # 3 workloads x 3 perturbations
        assert len(result.for_workload("OpenMail")) == 3

    def test_thinning_reduces_capacity(self, result):
        for cell in result.cells:
            if cell.perturbation.startswith("thin"):
                assert cell.c90_shift <= 0.05

    def test_jitter_dissolves_extreme_tail(self, result):
        """5 ms jitter rewrites the micro-timing of the giant batches, so
        the worst-case estimate drops while c90 barely moves."""
        for cell in result.cells:
            if cell.perturbation.startswith("jitter"):
                assert cell.c100_shift < 0.05
                assert abs(cell.c90_shift) < 0.30

    def test_batching_inflates_requirements(self, result):
        for cell in result.cells:
            if cell.perturbation.startswith("batch"):
                assert cell.c90_shift > 0.0

    def test_render(self, result):
        assert "Sensitivity" in sensitivity.render(result)


class TestResilience:
    @pytest.fixture(scope="class")
    def result(self, config):
        return resilience.run(config)

    def test_all_policies_compared(self, result):
        assert [c.policy for c in result.cells] == list(
            resilience.RESILIENCE_POLICIES
        )

    def test_conservation_counts(self, result):
        """Every cell's terminal states sum to the injected workload."""
        n = len(CONFIG.workload(resilience.WORKLOAD))
        for cell in result.cells:
            assert cell.completed + cell.dropped + cell.shed == n

    def test_classifying_policies_restore(self, result):
        for cell in result.cells:
            if cell.policy == "fcfs":
                continue
            assert cell.restored, (
                f"{cell.policy}: post-fault {cell.post_fault_q1:.3f} vs "
                f"healthy {cell.healthy_q1:.3f}"
            )
            assert cell.degrades is not None

    def test_render(self, result):
        text = resilience.render(result)
        assert "Resilience" in text and "restored" in text


class TestWorkloadOverrides:
    def test_real_trace_substitution(self):
        """The hook for real traces: an override is used verbatim by
        every experiment instead of the synthetic stand-in."""
        import numpy as np

        from repro.core.workload import Workload
        from repro.experiments import table1

        custom = Workload(
            np.sort(np.random.default_rng(0).uniform(0, 10.0, 2000)),
            name="MyRealTrace",
        )
        cfg = ExperimentConfig(
            duration=10.0, overrides={"websearch": custom}
        )
        assert cfg.workload("websearch") is custom
        result = table1.run(
            cfg, workload_names=("websearch",), deltas=(0.010,),
            fractions=(0.9, 1.0),
        )
        assert "websearch" in result.capacities


class TestVerify:
    def test_all_criteria_pass_at_small_scale(self):
        from repro.experiments import verify

        checks = verify.verify(ExperimentConfig(duration=60.0))
        failed = [c for c in checks if not c.passed]
        assert not failed, verify.render(checks)
        assert len(checks) >= 12

    def test_render_counts(self):
        from repro.experiments.verify import Check, render

        text = render([
            Check("x", "works", True, "ok"),
            Check("y", "breaks", False, "nope"),
        ])
        assert "[PASS] x" in text
        assert "[FAIL] y" in text
        assert "1/2 criteria passed" in text

    def test_cli_verify_exit_code(self, capsys):
        code = main(["--verify", "--duration", "40"])
        out = capsys.readouterr().out
        assert "criteria passed" in out
        assert code in (0, 1)  # small scale may be noisy; CLI contract only

    def test_cli_requires_experiments_or_verify(self):
        with pytest.raises(SystemExit):
            main([])

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["figure99"])


class TestWorkbound:
    @pytest.fixture(scope="class")
    def result(self, config):
        return workbound.run(config)

    def test_registered_but_not_in_order(self):
        assert "workbound" in EXPERIMENTS
        assert "workbound" not in ORDER

    def test_all_cells_conserve(self, result):
        assert len(result.cells) == len(workbound.POLICIES) * 2
        for cell in result.cells:
            assert cell.conserved
            assert cell.q1_completed + cell.q2_completed == result.n_requests

    def test_count_and_work_diverge(self, result):
        by_policy = {}
        for cell in result.cells:
            by_policy.setdefault(cell.policy, {})[cell.admission] = cell
        for modes in by_policy.values():
            assert modes["count"].q1_completed != modes["work"].q1_completed

    def test_workload_is_genuinely_sized(self, result):
        # The bimodal mix must show up as mean demand above unit cost.
        assert result.mean_demand > 1.0
        assert result.total_work > result.n_requests

    def test_render(self, result):
        text = workbound.render(result)
        assert "work-bound" in text and "conserved" in text


class TestBufferbloat:
    @pytest.fixture(scope="class")
    def result(self, config):
        return bufferbloat.run(config)

    def test_registered_but_not_in_order(self):
        assert "bufferbloat" in EXPERIMENTS
        assert "bufferbloat" not in ORDER

    def test_full_grid(self, result):
        assert [(c.aqm, c.scenario) for c in result.cells] == [
            (aqm or "none", scenario)
            for aqm in bufferbloat.AQMS
            for scenario in bufferbloat.SCENARIOS
        ]

    def test_every_cell_conserves(self, result):
        for cell in result.cells:
            assert cell.conserved, (cell.aqm, cell.scenario)

    def test_unbounded_queue_degrades_q1(self, result):
        cells = {(c.aqm, c.scenario): c for c in result.cells}
        bloated = cells[("unbounded", "open")]
        baseline = cells[("none", "open")]
        assert bloated.primary_misses > baseline.primary_misses
        assert bloated.q1_completed < baseline.q1_completed

    def test_managed_windows_recover(self, result):
        cells = {(c.aqm, c.scenario): c for c in result.cells}
        bloated = cells[("unbounded", "open")]
        for aqm in ("static", "codel", "adaptive"):
            assert cells[(aqm, "open")].primary_misses < bloated.primary_misses

    def test_render(self, result):
        text = bufferbloat.render(result)
        assert "Bufferbloat" in text and "aqm" in text
