"""Smoke tests: every example script runs to completion at small scale."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str]):
    """Execute an example as __main__ with a controlled argv."""
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


@pytest.mark.parametrize(
    "name,argv",
    [
        ("quickstart.py", ["20"]),
        ("scheduler_comparison.py", ["20"]),
        ("multi_tenant_consolidation.py", ["20"]),
        ("trace_toolkit.py", []),
        ("graduated_sla.py", ["15"]),
        ("shared_server_isolation.py", ["15"]),
        ("online_provisioning.py", ["40"]),
        ("storage_array_sim.py", ["15"]),
        ("trace_twin.py", ["30"]),
        ("brownout_monitoring.py", ["20"]),
    ],
)
def test_example_runs(name, argv, capsys):
    run_example(name, argv)
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_capacity_planning_example(capsys, monkeypatch):
    # capacity_planning reads its trace from argv[1] if present; run the
    # default (library) path but at the script's built-in duration.
    run_example("capacity_planning.py", [])
    out = capsys.readouterr().out
    assert "Cmin" in out
    assert "knee" in out
