# Convenience targets for the repro project.

PYTHON ?= python3

.PHONY: install test bench bench-json bench-smoke experiments examples verify clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-json:
	$(PYTHON) benchmarks/bench_kernels.py --output BENCH_kernels.json
	$(PYTHON) benchmarks/bench_engine.py --output BENCH_engine.json

bench-smoke:
	$(PYTHON) benchmarks/bench_engine.py --quick

experiments:
	$(PYTHON) -m repro.experiments.runner all

examples:
	$(PYTHON) examples/quickstart.py 60
	$(PYTHON) examples/capacity_planning.py
	$(PYTHON) examples/scheduler_comparison.py 60
	$(PYTHON) examples/multi_tenant_consolidation.py 60
	$(PYTHON) examples/trace_toolkit.py
	$(PYTHON) examples/graduated_sla.py 60
	$(PYTHON) examples/shared_server_isolation.py 60
	$(PYTHON) examples/online_provisioning.py 60
	$(PYTHON) examples/storage_array_sim.py 40
	$(PYTHON) examples/trace_twin.py 60
	$(PYTHON) examples/brownout_monitoring.py 30

verify:
	$(PYTHON) -m repro.experiments.runner --verify

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
