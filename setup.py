"""Setuptools shim: lets `pip install -e .` / `setup.py develop` work on
environments whose setuptools lacks PEP 660 wheel support (no `wheel` pkg).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
